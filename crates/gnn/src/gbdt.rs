//! Gradient-boosted regression trees — the ML engine of the DAC'20
//! baseline \[5\].
//!
//! The prior work feeds manually selected RC-structure features (after
//! breaking loops) into an XGBoost regressor. This is a from-scratch
//! squared-loss GBDT: exact greedy splits on sorted features, shrinkage,
//! and a mean-prediction base score. Feature extraction lives with the
//! estimator crate; this module is feature-agnostic.

use crate::GnnError;

/// GBDT hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            trees: 120,
            max_depth: 4,
            min_leaf: 4,
            learning_rate: 0.1,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum TreeNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A single regression tree (CART, squared loss).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

impl RegressionTree {
    /// Fits a tree on `rows` (each a feature vector) against `targets`.
    fn fit(
        rows: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        max_depth: usize,
        min_leaf: usize,
    ) -> Self {
        let mut nodes = Vec::new();
        Self::build(rows, targets, indices, max_depth, min_leaf, &mut nodes);
        RegressionTree { nodes }
    }

    fn mean(targets: &[f64], idx: &[usize]) -> f64 {
        idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len().max(1) as f64
    }

    fn build(
        rows: &[Vec<f64>],
        targets: &[f64],
        idx: &[usize],
        depth: usize,
        min_leaf: usize,
        nodes: &mut Vec<TreeNode>,
    ) -> usize {
        let node_id = nodes.len();
        nodes.push(TreeNode::Leaf {
            value: Self::mean(targets, idx),
        });
        if depth == 0 || idx.len() < 2 * min_leaf {
            return node_id;
        }
        // Best split across all features: maximize SSE reduction via
        // sorted prefix sums.
        let n_features = rows.first().map_or(0, |r| r.len());
        let total_sum: f64 = idx.iter().map(|&i| targets[i]).sum();
        let total_cnt = idx.len() as f64;
        let parent_score = total_sum * total_sum / total_cnt;
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted = idx.to_vec();
        // `f` indexes the inner feature dimension across many rows, so an
        // iterator over `rows` cannot replace it.
        #[allow(clippy::needless_range_loop)]
        for f in 0..n_features {
            sorted.sort_by(|&a, &b| rows[a][f].total_cmp(&rows[b][f]));
            let mut left_sum = 0.0;
            for pos in 0..sorted.len() - 1 {
                left_sum += targets[sorted[pos]];
                let left_cnt = (pos + 1) as f64;
                // Can't split between equal feature values.
                if rows[sorted[pos]][f] == rows[sorted[pos + 1]][f] {
                    continue;
                }
                if pos + 1 < min_leaf || sorted.len() - pos - 1 < min_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_cnt = total_cnt - left_cnt;
                let score =
                    left_sum * left_sum / left_cnt + right_sum * right_sum / right_cnt;
                let gain = score - parent_score;
                if best.map_or(gain > 1e-12, |(g, _, _)| gain > g) {
                    let threshold = 0.5 * (rows[sorted[pos]][f] + rows[sorted[pos + 1]][f]);
                    best = Some((gain, f, threshold));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return node_id;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| rows[i][feature] <= threshold);
        let left = Self::build(rows, targets, &left_idx, depth - 1, min_leaf, nodes);
        let right = Self::build(rows, targets, &right_idx, depth - 1, min_leaf, nodes);
        nodes[node_id] = TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    /// Predicts one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is trivial.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    base: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
}

impl Gbdt {
    /// Fits the ensemble on `rows`/`targets`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BadBatch`] when the inputs are empty or ragged.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], cfg: &GbdtConfig) -> Result<Self, GnnError> {
        if rows.is_empty() || rows.len() != targets.len() {
            return Err(GnnError::BadBatch(format!(
                "{} rows vs {} targets",
                rows.len(),
                targets.len()
            )));
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            return Err(GnnError::BadBatch("ragged feature rows".into()));
        }
        let base = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut residuals: Vec<f64> = targets.iter().map(|t| t - base).collect();
        let indices: Vec<usize> = (0..rows.len()).collect();
        let mut trees = Vec::with_capacity(cfg.trees);
        for _ in 0..cfg.trees {
            let tree =
                RegressionTree::fit(rows, &residuals, &indices, cfg.max_depth, cfg.min_leaf);
            for (i, row) in rows.iter().enumerate() {
                residuals[i] -= cfg.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Ok(Gbdt {
            base,
            trees,
            learning_rate: cfg.learning_rate,
        })
    }

    /// Predicts one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base
            + self.learning_rate
                * self
                    .trees
                    .iter()
                    .map(|t| t.predict(row))
                    .sum::<f64>()
    }

    /// Number of boosting rounds fitted.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data<F: Fn(f64, f64) -> f64>(n: usize, f: F) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.731).sin();
            let b = (i as f64 * 0.337).cos();
            rows.push(vec![a, b]);
            ys.push(f(a, b));
        }
        (rows, ys)
    }

    #[test]
    fn fits_linear_function() {
        let (rows, ys) = make_data(200, |a, b| 3.0 * a - 2.0 * b + 1.0);
        let model = Gbdt::fit(&rows, &ys, &GbdtConfig::default()).unwrap();
        let mse: f64 = rows
            .iter()
            .zip(&ys)
            .map(|(r, y)| (model.predict(r) - y).powi(2))
            .sum::<f64>()
            / rows.len() as f64;
        assert!(mse < 0.05, "train mse {mse}");
        assert_eq!(model.tree_count(), GbdtConfig::default().trees);
    }

    #[test]
    fn fits_nonlinear_interaction() {
        let (rows, ys) = make_data(300, |a, b| a * b + (a > 0.0) as i32 as f64);
        let model = Gbdt::fit(
            &rows,
            &ys,
            &GbdtConfig {
                trees: 200,
                max_depth: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let mse: f64 = rows
            .iter()
            .zip(&ys)
            .map(|(r, y)| (model.predict(r) - y).powi(2))
            .sum::<f64>()
            / rows.len() as f64;
        assert!(mse < 0.05, "train mse {mse}");
    }

    #[test]
    fn constant_targets_give_constant_prediction() {
        let (rows, _) = make_data(50, |_, _| 0.0);
        let ys = vec![7.5; 50];
        let model = Gbdt::fit(&rows, &ys, &GbdtConfig::default()).unwrap();
        assert!((model.predict(&rows[0]) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Gbdt::fit(&[], &[], &GbdtConfig::default()).is_err());
        let rows = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(Gbdt::fit(&rows, &[1.0, 2.0], &GbdtConfig::default()).is_err());
        let rows = vec![vec![1.0]];
        assert!(Gbdt::fit(&rows, &[1.0, 2.0], &GbdtConfig::default()).is_err());
    }

    #[test]
    fn respects_min_leaf() {
        let (rows, ys) = make_data(20, |a, _| a);
        let model = Gbdt::fit(
            &rows,
            &ys,
            &GbdtConfig {
                trees: 1,
                max_depth: 10,
                min_leaf: 10,
                learning_rate: 1.0,
            },
        )
        .unwrap();
        // With min_leaf = n/2 the single tree can split at most once.
        assert!(model.trees[0].len() <= 3);
    }

    #[test]
    fn generalizes_to_unseen_points() {
        let (rows, ys) = make_data(400, |a, b| 2.0 * a + b);
        let (train_r, test_r) = rows.split_at(300);
        let (train_y, test_y) = ys.split_at(300);
        let model = Gbdt::fit(train_r, train_y, &GbdtConfig::default()).unwrap();
        let mse: f64 = test_r
            .iter()
            .zip(test_y)
            .map(|(r, y)| (model.predict(r) - y).powi(2))
            .sum::<f64>()
            / test_r.len() as f64;
        assert!(mse < 0.1, "test mse {mse}");
    }
}
