//! Graph-learning models for wire timing.
//!
//! Implements the paper's **GNNTrans** architecture and every baseline it
//! compares against, all on top of the [`tensor`] autograd crate:
//!
//! * [`batch`] — packs one RC net into the tensors the models consume
//!   (node features, four adjacency variants, per-path node lists and
//!   path features);
//! * [`layers`] — the building blocks: the edge-weighted GraphSage-style
//!   layer of eq. (1), the multi-head self-attention layer of
//!   eqs. (2)–(3), plus GAT, GCNII and Dwivedi–Bresson transformer layers
//!   for the baselines;
//! * [`models`] — [`models::GnnTrans`] (GNN → graph transformer → path
//!   pooling with path features → slew MLP → delay MLP conditioned on
//!   slew) and the GraphSage / GAT / GCNII / Graph-Transformer baselines
//!   with plain mean pooling;
//! * [`gbdt`] — gradient-boosted regression trees, the ML engine behind
//!   the DAC'20 \[5\] baseline;
//! * [`train`] — the MSE training loop (Adam) shared by all graph models,
//!   with a tape backend (the gradient oracle) and a packed tape-free
//!   backend;
//! * [`grad`] — the packed-batch training engine: analytic backward
//!   through the segment-packed kernels, one tall GEMM per layer in both
//!   directions.
//!
//! # Examples
//!
//! ```
//! use gnn::models::{GnnTrans, GnnTransConfig};
//! use gnn::GraphModel;
//!
//! let cfg = GnnTransConfig { node_dim: 4, path_dim: 3, hidden: 8, gnn_layers: 2,
//!                            attn_layers: 1, heads: 2, ..Default::default() };
//! let model = GnnTrans::new(&cfg, 42);
//! assert!(model.param_set().scalar_count() > 0);
//! ```

pub mod batch;
pub mod gbdt;
pub mod grad;
pub mod infer;
pub mod layers;
pub mod models;
pub mod train;

pub use batch::{GraphBatch, PathSpec};
pub use models::GraphModel;

use std::error::Error;
use std::fmt;

/// Errors from model construction and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GnnError {
    /// A batch was inconsistent (shape mismatch, empty paths…).
    BadBatch(String),
    /// A model configuration was invalid.
    BadConfig(String),
    /// Training diverged (non-finite loss).
    Diverged {
        /// Epoch at which the loss became non-finite.
        epoch: usize,
    },
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::BadBatch(m) => write!(f, "bad batch: {m}"),
            GnnError::BadConfig(m) => write!(f, "bad config: {m}"),
            GnnError::Diverged { epoch } => write!(f, "training diverged at epoch {epoch}"),
        }
    }
}

impl Error for GnnError {}
