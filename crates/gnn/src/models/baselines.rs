//! The TABLE III/IV baseline models.
//!
//! Per the paper's evaluation protocol (§IV-A), every baseline generates
//! node representations with its own layer type, mean-pools them over the
//! wire path's nodes, and predicts slew/delay with an MLP — *without* the
//! path-feature concatenation that is GNNTrans's distinguishing pooling
//! module.

use crate::batch::GraphBatch;
use crate::layers::{GatLayer, Gcn2Layer, Linear, Mlp, TransformerLayer, WSageLayer};
use crate::models::{mean_pool_paths, GraphModel};
use tensor::init::InitRng;
use tensor::{ParamSet, Tape, Var};

/// Shared hyper-parameters for the baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Node feature width `d_x`.
    pub node_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Search depth `L` (the paper uses 20).
    pub layers: usize,
    /// Attention heads (graph transformer only).
    pub heads: usize,
    /// MLP head hidden width.
    pub mlp_hidden: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            node_dim: 10,
            hidden: 16,
            layers: 20,
            heads: 4,
            mlp_hidden: 32,
        }
    }
}

macro_rules! impl_graph_model {
    ($ty:ident, $name:literal) => {
        impl GraphModel for $ty {
            fn name(&self) -> &str {
                $name
            }
            fn param_set(&self) -> &ParamSet {
                &self.params
            }
            fn param_set_mut(&mut self) -> &mut ParamSet {
                &mut self.params
            }
            fn forward(&self, tape: &mut Tape, batch: &GraphBatch) -> Var {
                let x = self.encode(tape, batch);
                let pooled = mean_pool_paths(tape, x, batch);
                self.head.forward(tape, &self.params, pooled)
            }
        }
    };
}

/// GraphSage (Hamilton et al., 2017): mean aggregation over neighbors.
#[derive(Debug)]
pub struct GraphSageNet {
    params: ParamSet,
    proj: Linear,
    layers: Vec<WSageLayer>,
    head: Mlp,
}

impl GraphSageNet {
    /// Builds the model.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(seed);
        let proj = Linear::new(&mut params, &mut rng, "input", cfg.node_dim, cfg.hidden);
        let layers = (0..cfg.layers)
            .map(|i| WSageLayer::new(&mut params, &mut rng, &format!("sage{i}"), cfg.hidden, cfg.hidden))
            .collect();
        let head = Mlp::new(&mut params, &mut rng, "head", &[cfg.hidden, cfg.mlp_hidden, 2]);
        GraphSageNet {
            params,
            proj,
            layers,
            head,
        }
    }

    fn encode(&self, tape: &mut Tape, batch: &GraphBatch) -> Var {
        let x0 = tape.constant(batch.x.clone());
        // Mean aggregation: binary row-normalized adjacency.
        let adj = tape.constant(batch.adj_mean.clone());
        let mut x = self.proj.forward(tape, &self.params, x0);
        x = tape.relu(x);
        for layer in &self.layers {
            x = layer.forward(tape, &self.params, x, adj);
        }
        x
    }
}
impl_graph_model!(GraphSageNet, "GraphSage");

/// GAT (Veličković et al., 2018): edge-masked attention aggregation.
#[derive(Debug)]
pub struct GatNet {
    params: ParamSet,
    proj: Linear,
    layers: Vec<GatLayer>,
    head: Mlp,
}

impl GatNet {
    /// Builds the model.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(seed);
        let proj = Linear::new(&mut params, &mut rng, "input", cfg.node_dim, cfg.hidden);
        let layers = (0..cfg.layers)
            .map(|i| GatLayer::new(&mut params, &mut rng, &format!("gat{i}"), cfg.hidden, cfg.hidden))
            .collect();
        let head = Mlp::new(&mut params, &mut rng, "head", &[cfg.hidden, cfg.mlp_hidden, 2]);
        GatNet {
            params,
            proj,
            layers,
            head,
        }
    }

    fn encode(&self, tape: &mut Tape, batch: &GraphBatch) -> Var {
        let x0 = tape.constant(batch.x.clone());
        let mask = tape.constant(batch.adj_mask.clone());
        let mut x = self.proj.forward(tape, &self.params, x0);
        x = tape.relu(x);
        for layer in &self.layers {
            x = layer.forward(tape, &self.params, x, mask);
        }
        x
    }
}
impl_graph_model!(GatNet, "GAT");

/// GCNII (Chen et al., 2020): initial residual + identity mapping, the
/// anti-over-smoothing deep GCN.
#[derive(Debug)]
pub struct Gcn2Net {
    params: ParamSet,
    proj: Linear,
    layers: Vec<Gcn2Layer>,
    head: Mlp,
}

impl Gcn2Net {
    /// Builds the model with `alpha = 0.1`, `lambda = 0.5`.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(seed);
        let proj = Linear::new(&mut params, &mut rng, "input", cfg.node_dim, cfg.hidden);
        let layers = (0..cfg.layers)
            .map(|i| {
                Gcn2Layer::new(
                    &mut params,
                    &mut rng,
                    &format!("gcn2_{i}"),
                    cfg.hidden,
                    i + 1,
                    0.1,
                    0.5,
                )
            })
            .collect();
        let head = Mlp::new(&mut params, &mut rng, "head", &[cfg.hidden, cfg.mlp_hidden, 2]);
        Gcn2Net {
            params,
            proj,
            layers,
            head,
        }
    }

    fn encode(&self, tape: &mut Tape, batch: &GraphBatch) -> Var {
        let xin = tape.constant(batch.x.clone());
        let adj = tape.constant(batch.adj_gcn.clone());
        let mut x0 = self.proj.forward(tape, &self.params, xin);
        x0 = tape.relu(x0);
        let mut x = x0;
        for layer in &self.layers {
            x = layer.forward(tape, &self.params, x, x0, adj);
        }
        x
    }
}
impl_graph_model!(Gcn2Net, "GCNII");

/// Graph transformer (Dwivedi & Bresson, 2020): pure attention, no
/// message passing.
#[derive(Debug)]
pub struct GraphTransformerNet {
    params: ParamSet,
    proj: Linear,
    layers: Vec<TransformerLayer>,
    head: Mlp,
}

impl GraphTransformerNet {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics when `hidden` is not divisible by `heads`.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(seed);
        let proj = Linear::new(&mut params, &mut rng, "input", cfg.node_dim, cfg.hidden);
        let layers = (0..cfg.layers)
            .map(|i| {
                TransformerLayer::new(&mut params, &mut rng, &format!("tr{i}"), cfg.hidden, cfg.heads)
            })
            .collect();
        let head = Mlp::new(&mut params, &mut rng, "head", &[cfg.hidden, cfg.mlp_hidden, 2]);
        GraphTransformerNet {
            params,
            proj,
            layers,
            head,
        }
    }

    fn encode(&self, tape: &mut Tape, batch: &GraphBatch) -> Var {
        let x0 = tape.constant(batch.x.clone());
        let mut x = self.proj.forward(tape, &self.params, x0);
        x = tape.relu(x);
        for layer in &self.layers {
            x = layer.forward(tape, &self.params, x);
        }
        x
    }
}
impl_graph_model!(GraphTransformerNet, "Trans.");

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};
    use tensor::Mat;

    fn batch() -> GraphBatch {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(1e-15));
        let k = b.sink("k", Farads(1e-15));
        let k2 = b.sink("k2", Farads(1e-15));
        b.resistor(s, k, Ohms(30.0));
        b.resistor(s, k2, Ohms(60.0));
        let net = b.build().unwrap();
        let x = Mat::full(3, 4, 0.2);
        let pf = vec![Mat::row_vector(vec![1.0]), Mat::row_vector(vec![2.0])];
        GraphBatch::build(&net, x, pf, None).unwrap()
    }

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            node_dim: 4,
            hidden: 8,
            layers: 2,
            heads: 2,
            mlp_hidden: 8,
        }
    }

    #[test]
    fn all_baselines_produce_p_by_2() {
        let b = batch();
        let models: Vec<Box<dyn GraphModel>> = vec![
            Box::new(GraphSageNet::new(&cfg(), 1)),
            Box::new(GatNet::new(&cfg(), 1)),
            Box::new(Gcn2Net::new(&cfg(), 1)),
            Box::new(GraphTransformerNet::new(&cfg(), 1)),
        ];
        for m in &models {
            let out = m.predict(&b);
            assert_eq!(out.shape(), (2, 2), "{} shape", m.name());
            assert!(
                out.as_slice().iter().all(|v| v.is_finite()),
                "{} finite",
                m.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            GraphSageNet::new(&cfg(), 1).name().to_string(),
            GatNet::new(&cfg(), 1).name().to_string(),
            Gcn2Net::new(&cfg(), 1).name().to_string(),
            GraphTransformerNet::new(&cfg(), 1).name().to_string(),
        ];
        let mut sorted = names.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn paper_depth_20_stays_finite() {
        let deep = BaselineConfig {
            node_dim: 4,
            hidden: 8,
            layers: 20,
            heads: 2,
            mlp_hidden: 8,
        };
        let b = batch();
        let out = Gcn2Net::new(&deep, 2).predict(&b);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        let out = GraphSageNet::new(&deep, 2).predict(&b);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
