//! Wire-timing prediction models.
//!
//! [`GnnTrans`] is the paper's architecture; [`GraphSageNet`],
//! [`GatNet`], [`Gcn2Net`] and [`GraphTransformerNet`] are the TABLE
//! III/IV baselines. All implement [`GraphModel`], predict a `p x 2`
//! matrix (column 0 = slew, column 1 = delay, normalized units) per net,
//! and train through [`crate::train`].

mod baselines;
mod gnntrans;

pub use baselines::{BaselineConfig, GatNet, Gcn2Net, GraphSageNet, GraphTransformerNet};
pub use gnntrans::{GnnTrans, GnnTransConfig};

use crate::batch::GraphBatch;
use tensor::{Mat, ParamSet, Tape, Var};

/// A trainable per-net wire-timing model.
///
/// `Sync` is a supertrait because the training and inference loops run
/// [`GraphModel::forward`] on shared references from multiple threads
/// (see [`crate::train`]); every model here is plain parameter data, so
/// the bound is free.
pub trait GraphModel: Sync {
    /// Human-readable model name (used in result tables).
    fn name(&self) -> &str;

    /// The model's parameters.
    fn param_set(&self) -> &ParamSet;

    /// The model's parameters, mutably (for the optimizer).
    fn param_set_mut(&mut self) -> &mut ParamSet;

    /// Builds the forward pass for one net on `tape`, returning the
    /// `p x 2` prediction node (slew column 0, delay column 1).
    fn forward(&self, tape: &mut Tape, batch: &GraphBatch) -> Var;

    /// Convenience inference: runs [`GraphModel::forward`] on a fresh tape
    /// and returns the prediction values.
    fn predict(&self, batch: &GraphBatch) -> Mat {
        let mut tape = Tape::new();
        let out = self.forward(&mut tape, batch);
        tape.value(out).clone()
    }

    /// Compiles this model for packed-batch tape-free training, when
    /// supported ([`GnnTrans`] is; baselines return `None` and train on
    /// the tape regardless of the configured backend).
    fn packed_trainer(&self) -> Option<crate::grad::PackedTrainer> {
        None
    }
}

/// Mean-pools the final node representations over each wire path's nodes,
/// producing one `1 x d` row per path, stacked to `p x d` — the pooling
/// module of eq. (4) without the path-feature concatenation.
pub(crate) fn mean_pool_paths(tape: &mut Tape, x_final: Var, batch: &GraphBatch) -> Var {
    let rows: Vec<Var> = batch
        .paths
        .iter()
        .map(|p| {
            let gathered = tape.gather_rows(x_final, &p.nodes);
            tape.mean_rows(gathered)
        })
        .collect();
    tape.stack_rows(&rows)
}

/// Stacks the raw path features into a `p x d_h` constant.
pub(crate) fn stack_path_features(tape: &mut Tape, batch: &GraphBatch) -> Var {
    let rows: Vec<Var> = batch
        .paths
        .iter()
        .map(|p| tape.constant(p.features.clone()))
        .collect();
    tape.stack_rows(&rows)
}
