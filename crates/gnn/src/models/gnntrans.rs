//! GNNTrans — the paper's architecture (Fig. 4).
//!
//! `L1` edge-weighted GNN layers learn local structure (eq. 1), `L2`
//! multi-head self-attention layers learn global relationships
//! (eqs. 2–3), the pooling module forms per-path representations by
//! concatenating mean node embeddings with the raw path features
//! (eq. 4), and two MLP heads predict slew (eq. 5) and then delay
//! conditioned on the predicted slew (eq. 6).

use crate::batch::GraphBatch;
use crate::layers::{Linear, MhsaLayer, Mlp, WSageLayer};
use crate::models::{mean_pool_paths, stack_path_features, GraphModel};
use tensor::init::InitRng;
use tensor::{ParamSet, Tape, Var};

/// Hyper-parameters of [`GnnTrans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GnnTransConfig {
    /// Node feature width `d_x`.
    pub node_dim: usize,
    /// Path feature width `d_h`.
    pub path_dim: usize,
    /// Hidden width of node representations.
    pub hidden: usize,
    /// `L1`: number of GNN layers.
    pub gnn_layers: usize,
    /// `L2`: number of graph-transformer layers.
    pub attn_layers: usize,
    /// Attention heads per transformer layer.
    pub heads: usize,
    /// Hidden width of the two MLP heads.
    pub mlp_hidden: usize,
    /// Concatenate raw path features into the path representation
    /// (eq. 4). Disabling this is the paper's key ablation: the model
    /// degrades to baseline-style pooling.
    pub path_features: bool,
    /// Weight neighbor aggregation by resistance (eq. 1). When disabled
    /// the layer degenerates to vanilla mean aggregation.
    pub weighted_aggregation: bool,
    /// Apply (non-affine) layer norm inside attention blocks for deep-
    /// stack stability.
    pub attn_norm: bool,
}

impl Default for GnnTransConfig {
    /// The paper's PlanB shape (`L1=20, L2=10`) at a CPU-sized hidden
    /// width.
    fn default() -> Self {
        GnnTransConfig {
            node_dim: 10,
            path_dim: 10,
            hidden: 16,
            gnn_layers: 20,
            attn_layers: 10,
            heads: 4,
            mlp_hidden: 32,
            path_features: true,
            weighted_aggregation: true,
            attn_norm: true,
        }
    }
}

/// The GNNTrans model.
///
/// # Examples
///
/// ```
/// use gnn::models::{GnnTrans, GnnTransConfig};
/// use gnn::GraphModel;
///
/// let cfg = GnnTransConfig { node_dim: 4, path_dim: 2, hidden: 8,
///                            gnn_layers: 2, attn_layers: 1, heads: 2,
///                            ..Default::default() };
/// let model = GnnTrans::new(&cfg, 1);
/// assert_eq!(model.name(), "GNNTrans");
/// ```
#[derive(Debug, Clone)]
pub struct GnnTrans {
    cfg: GnnTransConfig,
    params: ParamSet,
    input_proj: Linear,
    gnn: Vec<WSageLayer>,
    attn: Vec<MhsaLayer>,
    slew_head: Mlp,
    delay_head: Mlp,
}

impl GnnTrans {
    /// Builds the model with deterministic initialization from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `hidden` is not divisible by `heads`.
    pub fn new(cfg: &GnnTransConfig, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(seed);
        let input_proj = Linear::new(&mut params, &mut rng, "input", cfg.node_dim, cfg.hidden);
        let gnn = (0..cfg.gnn_layers)
            .map(|i| WSageLayer::new(&mut params, &mut rng, &format!("gnn{i}"), cfg.hidden, cfg.hidden))
            .collect();
        let attn = (0..cfg.attn_layers)
            .map(|i| {
                MhsaLayer::new(
                    &mut params,
                    &mut rng,
                    &format!("attn{i}"),
                    cfg.hidden,
                    cfg.heads,
                    cfg.attn_norm,
                )
            })
            .collect();
        let pooled_dim = cfg.hidden + if cfg.path_features { cfg.path_dim } else { 0 };
        let slew_head = Mlp::new(
            &mut params,
            &mut rng,
            "slew",
            &[pooled_dim, cfg.mlp_hidden, 1],
        );
        let delay_head = Mlp::new(
            &mut params,
            &mut rng,
            "delay",
            &[pooled_dim + 1, cfg.mlp_hidden, 1],
        );
        GnnTrans {
            cfg: cfg.clone(),
            params,
            input_proj,
            gnn,
            attn,
            slew_head,
            delay_head,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GnnTransConfig {
        &self.cfg
    }

    /// Input projection (for tape-free compilation).
    pub(crate) fn input_proj(&self) -> &Linear {
        &self.input_proj
    }

    /// GNN layer stack (for tape-free compilation).
    pub(crate) fn gnn_stack(&self) -> &[WSageLayer] {
        &self.gnn
    }

    /// Attention layer stack (for tape-free compilation).
    pub(crate) fn attn_stack(&self) -> &[MhsaLayer] {
        &self.attn
    }

    /// Slew head (for tape-free compilation).
    pub(crate) fn slew_head(&self) -> &Mlp {
        &self.slew_head
    }

    /// Delay head (for tape-free compilation).
    pub(crate) fn delay_head(&self) -> &Mlp {
        &self.delay_head
    }
}

impl GraphModel for GnnTrans {
    fn name(&self) -> &str {
        "GNNTrans"
    }

    fn param_set(&self) -> &ParamSet {
        &self.params
    }

    fn packed_trainer(&self) -> Option<crate::grad::PackedTrainer> {
        Some(crate::grad::PackedTrainer::compile(self))
    }

    fn param_set_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, tape: &mut Tape, batch: &GraphBatch) -> Var {
        let x0 = tape.constant(batch.x.clone());
        let adj = if self.cfg.weighted_aggregation {
            tape.constant(batch.adj_res.clone())
        } else {
            tape.constant(batch.adj_mean.clone())
        };
        let mut x = self.input_proj.forward(tape, &self.params, x0);
        x = tape.relu(x);
        for layer in &self.gnn {
            x = layer.forward(tape, &self.params, x, adj);
        }
        for layer in &self.attn {
            x = layer.forward(tape, &self.params, x);
        }
        // Pooling (eq. 4): mean node reps per path, concat path features.
        let pooled = mean_pool_paths(tape, x, batch);
        let f = if self.cfg.path_features {
            let h = stack_path_features(tape, batch);
            tape.concat_cols(pooled, h)
        } else {
            pooled
        };
        // Eq. (5): slew from the path representation.
        let slew = self.slew_head.forward(tape, &self.params, f);
        // Eq. (6): delay from the representation plus the predicted slew.
        let delay_in = tape.concat_cols(f, slew);
        let delay = self.delay_head.forward(tape, &self.params, delay_in);
        tape.concat_cols(slew, delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::{Farads, Ohms, RcNetBuilder};
    use tensor::Mat;

    fn tiny_cfg() -> GnnTransConfig {
        GnnTransConfig {
            node_dim: 3,
            path_dim: 2,
            hidden: 8,
            gnn_layers: 2,
            attn_layers: 1,
            heads: 2,
            mlp_hidden: 8,
            ..Default::default()
        }
    }

    fn batch() -> GraphBatch {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("s", Farads(1e-15));
        let m = b.internal("m", Farads(1e-15));
        let k1 = b.sink("k1", Farads(1e-15));
        let k2 = b.sink("k2", Farads(1e-15));
        b.resistor(s, m, Ohms(30.0));
        b.resistor(m, k1, Ohms(40.0));
        b.resistor(m, k2, Ohms(50.0));
        let net = b.build().unwrap();
        let x = Mat::full(4, 3, 0.25);
        let pf = vec![
            Mat::row_vector(vec![0.1, 0.2]),
            Mat::row_vector(vec![0.3, 0.4]),
        ];
        GraphBatch::build(&net, x, pf, None).unwrap()
    }

    #[test]
    fn forward_produces_one_row_per_path() {
        let model = GnnTrans::new(&tiny_cfg(), 3);
        let out = model.predict(&batch());
        assert_eq!(out.shape(), (2, 2));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = GnnTrans::new(&tiny_cfg(), 5).predict(&batch());
        let b = GnnTrans::new(&tiny_cfg(), 5).predict(&batch());
        assert_eq!(a, b);
        let c = GnnTrans::new(&tiny_cfg(), 6).predict(&batch());
        assert_ne!(a, c);
    }

    #[test]
    fn path_features_matter() {
        let with = GnnTrans::new(&tiny_cfg(), 5);
        let cfg_no = GnnTransConfig {
            path_features: false,
            ..tiny_cfg()
        };
        let without = GnnTrans::new(&cfg_no, 5);
        // With path features off, identical paths through identical node
        // sets would collapse; here the two paths share all but the last
        // node, so both still differ, but the parameter count must shrink.
        assert!(without.param_set().scalar_count() < with.param_set().scalar_count());
        let out = without.predict(&batch());
        assert_eq!(out.shape(), (2, 2));
    }

    #[test]
    fn deep_paper_shape_stays_finite() {
        // The paper's PlanB depth (L1=20, L2=10) at small width: the
        // forward pass must not explode or vanish to NaN.
        let cfg = GnnTransConfig {
            node_dim: 3,
            path_dim: 2,
            hidden: 8,
            heads: 2,
            mlp_hidden: 8,
            ..Default::default()
        };
        assert_eq!(cfg.gnn_layers, 20);
        assert_eq!(cfg.attn_layers, 10);
        let model = GnnTrans::new(&cfg, 11);
        let out = model.predict(&batch());
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
