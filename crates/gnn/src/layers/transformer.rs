//! Graph-transformer layer (Dwivedi & Bresson, 2020) — baseline.
//!
//! The pure-transformer comparison point [19]: multi-head self-attention
//! with residual + layer norm followed by a feed-forward block with
//! residual + layer norm, and no message passing at all.

use crate::layers::{Linear, MhsaLayer};
use tensor::init::InitRng;
use tensor::{ParamSet, Tape, Var};

/// One transformer encoder layer.
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    attention: MhsaLayer,
    ff1: Linear,
    ff2: Linear,
}

impl TransformerLayer {
    /// Registers the attention and feed-forward weights
    /// (`ff_dim = 2 * dim`).
    ///
    /// # Panics
    ///
    /// Panics when `dim` is not divisible by `heads`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut InitRng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        TransformerLayer {
            attention: MhsaLayer::new(params, rng, &format!("{name}/mhsa"), dim, heads, true),
            ff1: Linear::new(params, rng, &format!("{name}/ff1"), dim, 2 * dim),
            ff2: Linear::new(params, rng, &format!("{name}/ff2"), 2 * dim, dim),
        }
    }

    /// Applies attention + FFN, both with residuals and layer norm.
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var) -> Var {
        let attended = self.attention.forward(tape, params, x);
        let normed = tape.layer_norm_rows(attended, 1e-5);
        let h = self.ff1.forward(tape, params, normed);
        let h = tape.relu(h);
        let h = self.ff2.forward(tape, params, h);
        let out = tape.add(normed, h);
        tape.layer_norm_rows(out, 1e-5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Mat;

    #[test]
    fn shape_preserved_and_finite_when_deep() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(21);
        let layers: Vec<TransformerLayer> = (0..6)
            .map(|i| TransformerLayer::new(&mut params, &mut rng, &format!("t{i}"), 8, 2))
            .collect();
        let mut tape = Tape::new();
        let mut x = tape.constant(Mat::full(5, 8, 0.4));
        for l in &layers {
            x = l.forward(&mut tape, &params, x);
        }
        let v = tape.value(x);
        assert_eq!(v.shape(), (5, 8));
        assert!(v.as_slice().iter().all(|f| f.is_finite()));
        // Layer norm keeps activations bounded even after 6 layers.
        assert!(v.max_abs() < 50.0);
    }
}
