//! The paper's edge-weighted GraphSage-style layer — equation (1).
//!
//! ```text
//! x_i' = ReLU( W1 x_i + W2 * sum_u a_iu x_u )
//! ```
//!
//! Unlike vanilla GraphSage, whose adjacency is binary and whose
//! aggregation is a plain mean, the neighbor sum is weighted by the
//! resistance value `a_iu` between the two capacitances, injecting edge
//! information and making the layer strictly more expressive under the
//! 1-WL test (§III-C).

use crate::layers::Linear;
use tensor::init::InitRng;
use tensor::{ParamSet, Tape, Var};

/// One eq.-(1) layer.
#[derive(Debug, Clone)]
pub struct WSageLayer {
    w1: Linear,
    w2: Linear,
}

impl WSageLayer {
    /// Registers the two learnable matrices `W1`, `W2`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut InitRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        WSageLayer {
            w1: Linear::new(params, rng, &format!("{name}/w1"), in_dim, out_dim),
            w2: Linear::new(params, rng, &format!("{name}/w2"), in_dim, out_dim),
        }
    }

    /// Self-term projection `W1` (for tape-free compilation).
    pub(crate) fn w1(&self) -> &Linear {
        &self.w1
    }

    /// Neighbor-term projection `W2` (for tape-free compilation).
    pub(crate) fn w2(&self) -> &Linear {
        &self.w2
    }

    /// Applies the layer: `relu( X W1 + (A_res X) W2 )` where `adj_res` is
    /// the resistance-weighted adjacency (a tape constant).
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var, adj_res: Var) -> Var {
        let self_term = self.w1.forward(tape, params, x);
        let agg = tape.matmul(adj_res, x);
        let neigh_term = self.w2.forward_no_bias(tape, params, agg);
        let sum = tape.add(self_term, neigh_term);
        tape.relu(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Mat;

    #[test]
    fn forward_shape_and_nonnegativity() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(3);
        let layer = WSageLayer::new(&mut params, &mut rng, "l0", 4, 6);
        let mut tape = Tape::new();
        let x = tape.constant(Mat::full(5, 4, 0.3));
        let adj = tape.constant(Mat::eye(5));
        let y = layer.forward(&mut tape, &params, x, adj);
        assert_eq!(tape.value(y).shape(), (5, 6));
        assert!(tape.value(y).as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn edge_weights_change_output() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(3);
        let layer = WSageLayer::new(&mut params, &mut rng, "l0", 2, 2);

        let x = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let mut a_light = Mat::zeros(2, 2);
        a_light.set(0, 1, 0.1);
        a_light.set(1, 0, 0.1);
        let mut a_heavy = Mat::zeros(2, 2);
        a_heavy.set(0, 1, 2.0);
        a_heavy.set(1, 0, 2.0);

        let run = |a: Mat| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let av = tape.constant(a);
            let y = layer.forward(&mut tape, &params, xv, av);
            tape.value(y).clone()
        };
        assert_ne!(run(a_light), run(a_heavy), "resistance must matter");
    }

    #[test]
    fn isolated_node_sees_only_itself() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(5);
        let layer = WSageLayer::new(&mut params, &mut rng, "l0", 2, 3);
        // Zero adjacency: output = relu(X W1 + b), independent of other rows.
        let mut tape = Tape::new();
        let x1 = tape.constant(Mat::from_vec(2, 2, vec![1.0, 2.0, -3.0, 4.0]).unwrap());
        let a = tape.constant(Mat::zeros(2, 2));
        let y1 = layer.forward(&mut tape, &params, x1, a);
        let x2 = tape.constant(Mat::from_vec(2, 2, vec![1.0, 2.0, 9.0, -9.0]).unwrap());
        let y2 = layer.forward(&mut tape, &params, x2, a);
        // Row 0 identical, row 1 differs.
        assert_eq!(tape.value(y1).row(0), tape.value(y2).row(0));
    }
}
