//! Neural building blocks over the autograd tape.
//!
//! Each layer registers its weights in a shared [`tensor::ParamSet`] at
//! construction time; every forward pass re-inserts them into the current
//! [`tensor::Tape`] (define-by-run, so one tape per training step). All
//! shapes follow the row-vector convention: activations are `n x d`,
//! weights right-multiply.

mod attention;
mod gat;
mod gcn2;
mod linear;
mod transformer;
mod wsage;

pub use attention::MhsaLayer;
pub use gat::GatLayer;
pub use gcn2::Gcn2Layer;
pub use linear::{Linear, Mlp};
pub use transformer::TransformerLayer;
pub use wsage::WSageLayer;
