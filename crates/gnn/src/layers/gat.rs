//! Graph attention layer (Veličković et al., 2018) — baseline.
//!
//! Attention coefficients are computed only over graph edges (plus self),
//! using the standard additive form
//! `e_ij = LeakyReLU( a1·(W x_i) + a2·(W x_j) )` with a masked softmax.

use crate::layers::Linear;
use tensor::init::InitRng;
use tensor::{ParamSet, Tape, Var};

/// One single-head GAT layer.
#[derive(Debug, Clone)]
pub struct GatLayer {
    w: Linear,
    a_src: Linear,
    a_dst: Linear,
}

impl GatLayer {
    /// Registers the projection `W` and the two halves of the attention
    /// vector.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut InitRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        GatLayer {
            w: Linear::new_xavier(params, rng, &format!("{name}/w"), in_dim, out_dim),
            a_src: Linear::new_xavier(params, rng, &format!("{name}/asrc"), out_dim, 1),
            a_dst: Linear::new_xavier(params, rng, &format!("{name}/adst"), out_dim, 1),
        }
    }

    /// Applies the layer. `adj_mask` is 0 on edges/self and a large
    /// negative number elsewhere (see
    /// [`crate::batch::GraphBatch::adj_mask`]).
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var, adj_mask: Var) -> Var {
        let h = self.w.forward_no_bias(tape, params, x); // n x d
        let f_src = self.a_src.forward_no_bias(tape, params, h); // n x 1
        let f_dst = self.a_dst.forward_no_bias(tape, params, h); // n x 1
        // scores[i][j] = f_src[i] + f_dst[j]: broadcast col + broadcast row.
        let f_dst_row = tape.transpose(f_dst); // 1 x n
        let n = tape.value(h).rows();
        let zeros = tape.constant(tensor::Mat::zeros(n, n));
        let scores = tape.add_bias_cols(zeros, f_src);
        let scores = tape.add_bias_rows(scores, f_dst_row);
        let scores = tape.leaky_relu(scores, 0.2);
        let masked = tape.add(scores, adj_mask);
        let attn = tape.softmax_rows(masked);
        let agg = tape.matmul(attn, h);
        tape.relu(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Mat;

    fn chain_mask(n: usize) -> Mat {
        let mut m = Mat::full(n, n, -1e9);
        for i in 0..n {
            m.set(i, i, 0.0);
            if i + 1 < n {
                m.set(i, i + 1, 0.0);
                m.set(i + 1, i, 0.0);
            }
        }
        m
    }

    #[test]
    fn shape_preserved() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(4);
        let layer = GatLayer::new(&mut params, &mut rng, "g0", 3, 5);
        let mut tape = Tape::new();
        let x = tape.constant(Mat::full(4, 3, 0.5));
        let mask = tape.constant(chain_mask(4));
        let y = layer.forward(&mut tape, &params, x, mask);
        assert_eq!(tape.value(y).shape(), (4, 5));
    }

    #[test]
    fn attention_is_local() {
        // Perturbing a node outside the mask neighborhood must not change
        // the output of node 0 (unlike global self-attention).
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(8);
        let layer = GatLayer::new(&mut params, &mut rng, "g0", 3, 3);
        let run = |x: Mat| {
            let mut tape = Tape::new();
            let xv = tape.constant(x);
            let mask = tape.constant(chain_mask(4));
            let y = layer.forward(&mut tape, &params, xv, mask);
            tape.value(y).clone()
        };
        let mut a = Mat::full(4, 3, 0.2);
        let base = run(a.clone());
        a.set(3, 1, 7.0); // node 3 is two hops from node 0
        let pert = run(a);
        assert_eq!(base.row(0), pert.row(0), "GAT must stay local");
        assert_ne!(base.row(2), pert.row(2), "neighbors must react");
    }
}
