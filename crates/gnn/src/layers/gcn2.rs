//! GCNII layer (Chen et al., ICML 2020) — baseline.
//!
//! The deep-GCN fix the paper cites against over-smoothing [17]: initial
//! residual plus identity mapping,
//!
//! ```text
//! x^(l+1) = ReLU( ( (1-a) P x^(l) + a x^(0) ) ( (1-b_l) I + b_l W^(l) ) )
//! ```
//!
//! with `P` the symmetrically normalized adjacency and
//! `b_l = log(lambda/l + 1)`.

use crate::layers::Linear;
use tensor::init::InitRng;
use tensor::{ParamSet, Tape, Var};

/// One GCNII layer.
#[derive(Debug, Clone)]
pub struct Gcn2Layer {
    w: Linear,
    alpha: f32,
    beta: f32,
}

impl Gcn2Layer {
    /// Registers the layer's `W`. `depth_index` is the 1-based layer
    /// number `l` used for `beta_l = log(lambda / l + 1)`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut InitRng,
        name: &str,
        dim: usize,
        depth_index: usize,
        alpha: f32,
        lambda: f32,
    ) -> Self {
        let beta = (lambda / depth_index.max(1) as f32 + 1.0).ln();
        Gcn2Layer {
            w: Linear::new(params, rng, &format!("{name}/w"), dim, dim),
            alpha,
            beta,
        }
    }

    /// The identity-mapping mix factor for this depth.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// Applies the layer. `x0` is the initial (layer-0) representation,
    /// `adj_gcn` the symmetrically normalized adjacency.
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var, x0: Var, adj_gcn: Var) -> Var {
        let px = tape.matmul(adj_gcn, x);
        let px = tape.scale(px, 1.0 - self.alpha);
        let res = tape.scale(x0, self.alpha);
        let mixed = tape.add(px, res); // (1-a) P x + a x0
        let identity_part = tape.scale(mixed, 1.0 - self.beta);
        let transformed = self.w.forward_no_bias(tape, params, mixed);
        let transformed = tape.scale(transformed, self.beta);
        let out = tape.add(identity_part, transformed);
        tape.relu(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Mat;

    #[test]
    fn beta_decays_with_depth() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(1);
        let l1 = Gcn2Layer::new(&mut params, &mut rng, "a", 4, 1, 0.1, 0.5);
        let l9 = Gcn2Layer::new(&mut params, &mut rng, "b", 4, 9, 0.1, 0.5);
        assert!(l1.beta() > l9.beta());
    }

    #[test]
    fn initial_residual_keeps_x0_visible() {
        // With many layers, the output still depends on x0 thanks to the
        // alpha term (the anti-over-smoothing property).
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(5);
        let layers: Vec<Gcn2Layer> = (1..=8)
            .map(|l| Gcn2Layer::new(&mut params, &mut rng, &format!("l{l}"), 3, l, 0.2, 0.5))
            .collect();
        let run = |x0m: Mat| {
            let mut tape = Tape::new();
            let adj = tape.constant(Mat::eye(4).scale(1.0)); // trivial graph
            let x0 = tape.constant(x0m);
            let mut x = x0;
            for l in &layers {
                x = l.forward(&mut tape, &params, x, x0, adj);
            }
            tape.value(x).clone()
        };
        let a = run(Mat::full(4, 3, 0.5));
        let b = run(Mat::full(4, 3, 1.5));
        assert_ne!(a, b, "x0 must still influence deep output");
    }

    #[test]
    fn shape_preserved() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(5);
        let layer = Gcn2Layer::new(&mut params, &mut rng, "l", 6, 1, 0.1, 0.5);
        let mut tape = Tape::new();
        let x = tape.constant(Mat::full(5, 6, 0.3));
        let adj = tape.constant(Mat::eye(5));
        let y = layer.forward(&mut tape, &params, x, x, adj);
        assert_eq!(tape.value(y).shape(), (5, 6));
    }
}
