//! Affine layers and small MLPs.

use tensor::init::{he, xavier, InitRng};
use tensor::{Mat, ParamSet, Tape, Var};

/// An affine map `y = x W + b` with `W: in x out`, `b: 1 x out`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: usize,
    b: usize,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer's weights (He-uniform, zero bias) in `params`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut InitRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = params.add(format!("{name}/w"), he(in_dim, out_dim, rng));
        let b = params.add(format!("{name}/b"), Mat::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Same, with Xavier initialization (attention projections).
    pub fn new_xavier(
        params: &mut ParamSet,
        rng: &mut InitRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = params.add(format!("{name}/w"), xavier(in_dim, out_dim, rng));
        let b = params.add(format!("{name}/b"), Mat::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter id of the weight matrix (for tape-free compilation).
    pub(crate) fn w_id(&self) -> usize {
        self.w
    }

    /// Parameter id of the bias row (for tape-free compilation).
    pub(crate) fn b_id(&self) -> usize {
        self.b
    }

    /// Applies the layer on the tape.
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var) -> Var {
        let w = tape.param(self.w, params.get(self.w).clone());
        let b = tape.param(self.b, params.get(self.b).clone());
        let xw = tape.matmul(x, w);
        tape.add_bias_rows(xw, b)
    }

    /// Applies only the weight (no bias) — used where the paper's
    /// equations have a bare learnable matrix.
    pub fn forward_no_bias(&self, tape: &mut Tape, params: &ParamSet, x: Var) -> Var {
        let w = tape.param(self.w, params.get(self.w).clone());
        tape.matmul(x, w)
    }
}

/// A small ReLU MLP: `Linear -> ReLU -> ... -> Linear`.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Registers an MLP with the given layer widths, e.g.
    /// `[in, hidden, out]` makes two affine layers with one ReLU between.
    ///
    /// # Panics
    ///
    /// Panics when `dims` has fewer than two entries.
    pub fn new(params: &mut ParamSet, rng: &mut InitRng, name: &str, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, rng, &format!("{name}/l{i}"), w[0], w[1]))
            .collect();
        Mlp { layers }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The affine layers in application order (for tape-free compilation).
    pub(crate) fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Applies the MLP (ReLU between layers, linear output).
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, params, h);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(1);
        let l = Linear::new(&mut params, &mut rng, "t", 3, 5);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 5);
        let mut tape = Tape::new();
        let x = tape.constant(Mat::full(4, 3, 1.0));
        let y = l.forward(&mut tape, &params, x);
        assert_eq!(tape.value(y).shape(), (4, 5));
        let y2 = l.forward_no_bias(&mut tape, &params, x);
        assert_eq!(tape.value(y2).shape(), (4, 5));
    }

    #[test]
    fn mlp_learns_linear_map() {
        // Fit y = 3x - 1 with a 1-16-1 MLP.
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(7);
        let mlp = Mlp::new(&mut params, &mut rng, "m", &[1, 16, 1]);
        let xs = Mat::from_vec(8, 1, (0..8).map(|i| i as f32 * 0.2 - 0.8).collect()).unwrap();
        let ys = Mat::from_vec(
            8,
            1,
            xs.as_slice().iter().map(|x| 3.0 * x - 1.0).collect(),
        )
        .unwrap();
        let mut opt = tensor::optim::Adam::new(0.02);
        let mut final_loss = f32::INFINITY;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            let pred = mlp.forward(&mut tape, &params, x);
            let loss = tape.mse_loss(pred, &ys);
            tape.backward(loss);
            final_loss = tape.value(loss).get(0, 0);
            opt.step(&mut params, &tape.param_grads());
        }
        assert!(final_loss < 1e-3, "loss {final_loss}");
    }

    #[test]
    #[should_panic]
    fn mlp_needs_two_dims() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(1);
        let _ = Mlp::new(&mut params, &mut rng, "m", &[3]);
    }
}
