//! Multi-head self-attention over all nodes — equations (2)–(3).
//!
//! Every node attends to every other node of the RC net regardless of
//! connectivity, which is how the paper captures global, long-range
//! relationships without stacking (and over-smoothing) GNN layers:
//!
//! ```text
//! ã^(k) = softmax( (W_Q x)(W_K x)^T / sqrt(d_k) )          (2)
//! x'    = x + W3 · ||_k  ã^(k) (W_V x)                      (3)
//! ```

use crate::layers::Linear;
use tensor::init::InitRng;
use tensor::{ParamSet, Tape, Var};

/// One multi-head self-attention layer with residual connection.
#[derive(Debug, Clone)]
pub struct MhsaLayer {
    wq: Vec<Linear>,
    wk: Vec<Linear>,
    wv: Vec<Linear>,
    w3: Linear,
    head_dim: usize,
    norm: bool,
}

impl MhsaLayer {
    /// Registers `heads` sets of Q/K/V projections (`dim -> dim/heads`)
    /// and the output projection `W3`. When `norm` is set a (non-affine)
    /// layer norm is applied to the attention input, which stabilizes deep
    /// stacks without changing eq. (3)'s residual structure.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is not divisible by `heads`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut InitRng,
        name: &str,
        dim: usize,
        heads: usize,
        norm: bool,
    ) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim must divide into heads");
        let head_dim = dim / heads;
        let proj = |params: &mut ParamSet, rng: &mut InitRng, role: &str| -> Vec<Linear> {
            (0..heads)
                .map(|k| {
                    Linear::new_xavier(params, rng, &format!("{name}/{role}{k}"), dim, head_dim)
                })
                .collect()
        };
        let wq = proj(params, rng, "q");
        let wk = proj(params, rng, "k");
        let wv = proj(params, rng, "v");
        let w3 = Linear::new_xavier(params, rng, &format!("{name}/w3"), dim, dim);
        MhsaLayer {
            wq,
            wk,
            wv,
            w3,
            head_dim,
            norm,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.wq.len()
    }

    /// Per-head query projections (for tape-free compilation).
    pub(crate) fn wq(&self) -> &[Linear] {
        &self.wq
    }

    /// Per-head key projections (for tape-free compilation).
    pub(crate) fn wk(&self) -> &[Linear] {
        &self.wk
    }

    /// Per-head value projections (for tape-free compilation).
    pub(crate) fn wv(&self) -> &[Linear] {
        &self.wv
    }

    /// Output projection `W3` (for tape-free compilation).
    pub(crate) fn w3(&self) -> &Linear {
        &self.w3
    }

    /// Per-head width (for tape-free compilation).
    pub(crate) fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Whether the attention input is layer-normed (for tape-free
    /// compilation).
    pub(crate) fn norm(&self) -> bool {
        self.norm
    }

    /// Applies the layer: multi-head global attention plus residual.
    pub fn forward(&self, tape: &mut Tape, params: &ParamSet, x: Var) -> Var {
        let inner = if self.norm {
            tape.layer_norm_rows(x, 1e-5)
        } else {
            x
        };
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads());
        for k in 0..self.heads() {
            let q = self.wq[k].forward_no_bias(tape, params, inner);
            let key = self.wk[k].forward_no_bias(tape, params, inner);
            let v = self.wv[k].forward_no_bias(tape, params, inner);
            let kt = tape.transpose(key);
            let scores = tape.matmul(q, kt);
            let scores = tape.scale(scores, scale);
            let attn = tape.softmax_rows(scores);
            head_outputs.push(tape.matmul(attn, v));
        }
        let mut concat = head_outputs[0];
        for &h in &head_outputs[1..] {
            concat = tape.concat_cols(concat, h);
        }
        let projected = self.w3.forward(tape, params, concat);
        tape.add(x, projected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Mat;

    #[test]
    fn preserves_shape_and_has_residual() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(9);
        let layer = MhsaLayer::new(&mut params, &mut rng, "a0", 8, 2, false);
        assert_eq!(layer.heads(), 2);
        let mut tape = Tape::new();
        let xm = Mat::full(5, 8, 0.1);
        let x = tape.constant(xm.clone());
        let y = layer.forward(&mut tape, &params, x);
        assert_eq!(tape.value(y).shape(), (5, 8));
    }

    #[test]
    fn attention_is_global() {
        // Changing a "far" node changes every node's output even with no
        // graph edges anywhere (there is no adjacency input at all).
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(11);
        let layer = MhsaLayer::new(&mut params, &mut rng, "a0", 4, 1, false);
        let run = |x: Mat| {
            let mut tape = Tape::new();
            let xv = tape.constant(x);
            let y = layer.forward(&mut tape, &params, xv);
            tape.value(y).clone()
        };
        let mut a = Mat::full(3, 4, 0.2);
        let base = run(a.clone());
        a.set(2, 0, 5.0); // perturb the last node
        let pert = run(a);
        // Node 0's representation must change: global receptive field.
        assert_ne!(base.row(0), pert.row(0));
    }

    #[test]
    fn layer_norm_variant_runs() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(2);
        let layer = MhsaLayer::new(&mut params, &mut rng, "a0", 6, 3, true);
        let mut tape = Tape::new();
        let x = tape.constant(Mat::full(4, 6, 1.0));
        let y = layer.forward(&mut tape, &params, x);
        assert_eq!(tape.value(y).shape(), (4, 6));
        assert!(tape.value(y).as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic]
    fn dim_must_divide_heads() {
        let mut params = ParamSet::new();
        let mut rng = InitRng::new(2);
        let _ = MhsaLayer::new(&mut params, &mut rng, "a0", 7, 2, false);
    }
}
