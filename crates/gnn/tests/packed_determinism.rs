//! Thread-count determinism gate for the packed training backend: an
//! epoch whose chunks split into multiple packs (accum 16 over 20 nets
//! → two 8-graph packs plus a 4-graph pack per chunk, fanned out on
//! the `par` pool) must produce bit-identical weights at one and four
//! threads. The pack split is computed from the chunk alone — never
//! from the pool size — and pack results reduce in fixed chunk order,
//! so the packed backend keeps the tape backend's reproducibility
//! contract. `check.sh` runs this with `PAR_THREADS=4 PAR_FORCE_POOL=1`
//! so the four-thread leg exercises a real pool even on 1-core hosts.
//!
//! Single test function on purpose: `par::set_threads` is
//! process-global, so concurrent test functions flipping it would race.

use gnn::batch::GraphBatch;
use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use gnn::train::{train, validation_loss, TrainBackend, TrainConfig};
use netgen::nets::{NetConfig, NetGenerator};
use tensor::Mat;

const NODE_DIM: usize = 5;
const PATH_DIM: usize = 3;

fn labelled_batch(seed: u64) -> GraphBatch {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 16,
        ..Default::default()
    };
    let net = NetGenerator::new(seed, cfg).net(format!("g{seed}"), seed.is_multiple_of(3));
    let n = net.node_count();
    let x = Mat::from_vec(
        n,
        NODE_DIM,
        (0..n * NODE_DIM)
            .map(|i| ((i as f32 + seed as f32) * 0.37).sin() * 0.5)
            .collect(),
    )
    .unwrap();
    let paths = net.paths().len();
    let pf = (0..paths)
        .map(|i| Mat::row_vector(vec![i as f32 * 0.1, 0.4, -0.2]))
        .collect();
    let t = Mat::from_vec(
        paths,
        2,
        (0..paths * 2)
            .map(|i| ((i as f32 + seed as f32) * 0.19).cos() * 0.4 + 0.5)
            .collect(),
    )
    .unwrap();
    GraphBatch::build(&net, x, pf, Some(t)).unwrap()
}

fn model() -> GnnTrans {
    GnnTrans::new(
        &GnnTransConfig {
            node_dim: NODE_DIM,
            path_dim: PATH_DIM,
            hidden: 8,
            gnn_layers: 2,
            attn_layers: 1,
            heads: 2,
            mlp_hidden: 8,
            ..Default::default()
        },
        42,
    )
}

fn weight_bits(m: &GnnTrans) -> Vec<Vec<u32>> {
    m.param_set()
        .iter()
        .map(|(_, mat)| mat.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn packed_epoch_is_bit_identical_across_thread_counts() {
    let batches: Vec<GraphBatch> = (0..20).map(|i| labelled_batch(300 + i)).collect();
    let cfg = TrainConfig {
        epochs: 2,
        accum: 16, // each chunk splits into multiple packs that fan out
        backend: TrainBackend::Packed,
        ..Default::default()
    };

    par::set_threads(1);
    let mut serial = model();
    let rs = train(&mut serial, &batches, &cfg).unwrap();
    let vs = validation_loss(&serial, &batches).unwrap();

    par::set_threads(4);
    let mut parallel = model();
    let rp = train(&mut parallel, &batches, &cfg).unwrap();
    let vp = validation_loss(&parallel, &batches).unwrap();
    par::set_threads(1);

    assert_eq!(rs.epoch_losses, rp.epoch_losses);
    assert_eq!(rs.final_grad_norm.to_bits(), rp.final_grad_norm.to_bits());
    assert_eq!(rs.fallbacks, 0);
    assert_eq!(rp.fallbacks, 0);
    assert_eq!(
        weight_bits(&serial),
        weight_bits(&parallel),
        "packed pack fan-out diverged across thread counts"
    );
    assert_eq!(vs.to_bits(), vp.to_bits());
}
