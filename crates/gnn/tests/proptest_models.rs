//! Property tests over the model zoo: every architecture must produce
//! finite, deterministic, correctly shaped predictions for arbitrary
//! generated nets.

use gnn::batch::GraphBatch;
use gnn::models::{
    BaselineConfig, GatNet, Gcn2Net, GnnTrans, GnnTransConfig, GraphModel, GraphSageNet,
    GraphTransformerNet,
};
use netgen::nets::{NetConfig, NetGenerator};
use proptest::prelude::*;
use tensor::Mat;

const NODE_DIM: usize = 5;
const PATH_DIM: usize = 3;

fn batch_for(seed: u64, nontree: bool) -> GraphBatch {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 20,
        ..Default::default()
    };
    let net = NetGenerator::new(seed, cfg).net(format!("m{seed}"), nontree);
    let n = net.node_count();
    // Deterministic pseudo-features derived from the seed.
    let x = Mat::from_vec(
        n,
        NODE_DIM,
        (0..n * NODE_DIM)
            .map(|i| ((i as f32 + seed as f32) * 0.37).sin() * 0.5)
            .collect(),
    )
    .expect("sized");
    let pf = net
        .paths()
        .iter()
        .enumerate()
        .map(|(i, _)| Mat::row_vector(vec![i as f32 * 0.1, 0.2, -0.3]))
        .collect();
    GraphBatch::build(&net, x, pf, None).expect("valid batch")
}

fn zoo(seed: u64) -> Vec<Box<dyn GraphModel>> {
    let b = BaselineConfig {
        node_dim: NODE_DIM,
        hidden: 8,
        layers: 2,
        heads: 2,
        mlp_hidden: 8,
    };
    let g = GnnTransConfig {
        node_dim: NODE_DIM,
        path_dim: PATH_DIM,
        hidden: 8,
        gnn_layers: 2,
        attn_layers: 1,
        heads: 2,
        mlp_hidden: 8,
        ..Default::default()
    };
    vec![
        Box::new(GnnTrans::new(&g, seed)),
        Box::new(GraphSageNet::new(&b, seed)),
        Box::new(GatNet::new(&b, seed)),
        Box::new(Gcn2Net::new(&b, seed)),
        Box::new(GraphTransformerNet::new(&b, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_models_produce_finite_p_by_2(seed in 0u64..5_000, nontree in any::<bool>()) {
        let batch = batch_for(seed, nontree);
        for model in zoo(seed ^ 0x5a) {
            let out = model.predict(&batch);
            prop_assert_eq!(out.shape(), (batch.path_count(), 2), "{}", model.name());
            prop_assert!(
                out.as_slice().iter().all(|v| v.is_finite()),
                "{} produced non-finite output",
                model.name()
            );
        }
    }

    #[test]
    fn predictions_are_deterministic(seed in 0u64..5_000) {
        let batch = batch_for(seed, true);
        for (a, b) in zoo(seed).into_iter().zip(zoo(seed)) {
            prop_assert_eq!(a.predict(&batch), b.predict(&batch), "{}", a.name());
        }
    }

    #[test]
    fn batch_adjacencies_are_consistent(seed in 0u64..5_000, nontree in any::<bool>()) {
        let batch = batch_for(seed, nontree);
        let n = batch.node_count();
        for r in 0..n {
            let mut row_sum = 0.0f32;
            for c in 0..n {
                // Weighted adjacency is symmetric and non-negative.
                prop_assert!(batch.adj_res.get(r, c) >= 0.0);
                prop_assert!((batch.adj_res.get(r, c) - batch.adj_res.get(c, r)).abs() < 1e-6);
                row_sum += batch.adj_mean.get(r, c);
                // Mask opens exactly where the binary adjacency or the
                // diagonal is set.
                let open = batch.adj_mask.get(r, c) == 0.0;
                let connected = batch.adj_res.get(r, c) > 0.0 || r == c;
                prop_assert_eq!(open, connected);
            }
            // Mean-aggregation rows are stochastic (all nodes have degree
            // >= 1 on a connected net).
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
        }
    }
}
