//! Property tests pinning the tape-free inference engine to the tape
//! forward: on arbitrary generated nets (tree and non-tree) the
//! compiled [`InferenceModel`] must reproduce `GnnTrans::predict`
//! within 1e-6 relative error (in practice bit-exactly), and packing a
//! graph together with neighbors must not change its rows at all.

use gnn::batch::GraphBatch;
use gnn::infer::{Arena, InferenceModel, PackedBatch};
use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use netgen::nets::{NetConfig, NetGenerator};
use proptest::prelude::*;
use tensor::Mat;

const NODE_DIM: usize = 5;
const PATH_DIM: usize = 3;

fn batch_for(seed: u64, nontree: bool) -> GraphBatch {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 20,
        ..Default::default()
    };
    let net = NetGenerator::new(seed, cfg).net(format!("i{seed}"), nontree);
    let n = net.node_count();
    let x = Mat::from_vec(
        n,
        NODE_DIM,
        (0..n * NODE_DIM)
            .map(|i| ((i as f32 + seed as f32) * 0.41).sin() * 0.5)
            .collect(),
    )
    .expect("sized");
    let pf = net
        .paths()
        .iter()
        .enumerate()
        .map(|(i, _)| Mat::row_vector(vec![i as f32 * 0.1, -0.2, 0.3]))
        .collect();
    GraphBatch::build(&net, x, pf, None).expect("valid batch")
}

fn model_for(seed: u64, weighted: bool, norm: bool) -> GnnTrans {
    let cfg = GnnTransConfig {
        node_dim: NODE_DIM,
        path_dim: PATH_DIM,
        hidden: 8,
        gnn_layers: 2,
        attn_layers: 1,
        heads: 2,
        mlp_hidden: 8,
        weighted_aggregation: weighted,
        attn_norm: norm,
        ..Default::default()
    };
    GnnTrans::new(&cfg, seed)
}

/// Maximum relative error between two equally shaped matrices, with an
/// absolute floor so near-zero entries do not blow the ratio up.
fn max_rel_err(a: &Mat, b: &Mat) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-3))
        .fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tape_free_forward_matches_tape(
        seed in 0u64..5_000,
        nontree in any::<bool>(),
        weighted in any::<bool>(),
        norm in any::<bool>(),
    ) {
        let model = model_for(seed ^ 0x77, weighted, norm);
        let compiled = InferenceModel::compile(&model);
        let mut arena = Arena::new();
        let batch = batch_for(seed, nontree);
        let tape = model.predict(&batch);
        let fast = compiled.forward_one(&batch, &mut arena).expect("forward");
        prop_assert_eq!(fast.shape(), tape.shape());
        prop_assert!(
            max_rel_err(&fast, &tape) <= 1e-6,
            "rel err {} exceeds 1e-6",
            max_rel_err(&fast, &tape)
        );
        // The implementation mirrors the tape's accumulation order, so
        // parity is in fact exact — pin that stronger property too.
        prop_assert_eq!(fast, tape);
    }

    #[test]
    fn packed_rows_are_bit_identical_to_solo(
        seed in 0u64..5_000,
        nontree in any::<bool>(),
    ) {
        let model = model_for(seed ^ 0x2b, true, true);
        let compiled = InferenceModel::compile(&model);
        let mut arena = Arena::new();
        // The graph under test plus two arbitrary neighbors on each side.
        let batches: Vec<GraphBatch> = (0..5)
            .map(|k| batch_for(seed.wrapping_add(k * 131), nontree ^ (k % 2 == 0)))
            .collect();
        let refs: Vec<&GraphBatch> = batches.iter().collect();
        let packed = PackedBatch::pack(&refs).expect("pack");
        let joint = compiled.forward_packed(&packed, &mut arena).expect("forward");
        for (g, batch) in batches.iter().enumerate() {
            let solo = compiled.forward_one(batch, &mut arena).expect("forward");
            let (p0, p1) = packed.path_range(g);
            prop_assert_eq!(p1 - p0, solo.rows());
            for p in 0..solo.rows() {
                for c in 0..2 {
                    // Bit-identical: packing must not perturb a single ULP.
                    prop_assert_eq!(
                        joint.get(p0 + p, c).to_bits(),
                        solo.get(p, c).to_bits(),
                        "graph {} path {} col {} differs packed vs solo",
                        g, p, c
                    );
                }
            }
        }
    }
}
