//! The parallel-training determinism gate: one epoch of gradient
//! accumulation (`accum > 1`, per-graph passes fanned out on the `par`
//! pool) must produce bit-identical weights whether the pool runs one
//! thread or four — the fixed-order reduction in `train` is what the
//! ISSUE calls "bit-reproducible regardless of thread count".
//!
//! Single test function on purpose: `par::set_threads` is
//! process-global, so concurrent test functions flipping it would race.

use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use gnn::train::{train, validation_loss, TrainConfig};
use gnn::GraphBatch;
use rcnet::{Farads, Ohms, RcNetBuilder};
use tensor::Mat;

fn labelled_batch(r: f64, target: f32) -> GraphBatch {
    let mut b = RcNetBuilder::new("n");
    let s = b.source("s", Farads(1e-15));
    let k = b.sink("k", Farads(1e-15));
    b.resistor(s, k, Ohms(r));
    let net = b.build().unwrap();
    let x = Mat::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, (r as f32) / 100.0]).unwrap();
    let pf = vec![Mat::row_vector(vec![(r as f32) / 100.0, 1.0])];
    let t = Mat::from_vec(1, 2, vec![target, target * 2.0]).unwrap();
    GraphBatch::build(&net, x, pf, Some(t)).unwrap()
}

fn tiny_model() -> GnnTrans {
    GnnTrans::new(
        &GnnTransConfig {
            node_dim: 3,
            path_dim: 2,
            hidden: 8,
            gnn_layers: 2,
            attn_layers: 1,
            heads: 2,
            mlp_hidden: 8,
            ..Default::default()
        },
        42,
    )
}

fn weight_bits(m: &GnnTrans) -> Vec<Vec<u32>> {
    m.param_set()
        .iter()
        .map(|(_, mat)| mat.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn accumulated_training_is_bit_identical_across_thread_counts() {
    let batches: Vec<GraphBatch> = (0..9)
        .map(|i| labelled_batch(10.0 + 10.0 * i as f64, 0.1 * (i + 1) as f32))
        .collect();
    let cfg = TrainConfig {
        epochs: 1,
        accum: 4,
        ..Default::default()
    };

    par::set_threads(1);
    let mut serial = tiny_model();
    let rs = train(&mut serial, &batches, &cfg).unwrap();
    let vs = validation_loss(&serial, &batches).unwrap();

    par::set_threads(4);
    let mut parallel = tiny_model();
    let rp = train(&mut parallel, &batches, &cfg).unwrap();
    let vp = validation_loss(&parallel, &batches).unwrap();
    par::set_threads(1);

    assert_eq!(rs.epoch_losses, rp.epoch_losses);
    assert_eq!(rs.final_grad_norm.to_bits(), rp.final_grad_norm.to_bits());
    assert_eq!(
        weight_bits(&serial),
        weight_bits(&parallel),
        "parallel accumulation diverged from serial"
    );
    assert_eq!(vs.to_bits(), vp.to_bits());

    // accum = 1 stays bit-identical to the seed per-graph loop
    // semantics regardless of the pool size (chunks of one never fan
    // out), so the default path is untouched by parallelism.
    par::set_threads(4);
    let mut chunked_one = tiny_model();
    let r1 = train(&mut chunked_one, &batches, &TrainConfig { epochs: 1, ..Default::default() })
        .unwrap();
    par::set_threads(1);
    let mut baseline = tiny_model();
    let r2 = train(&mut baseline, &batches, &TrainConfig { epochs: 1, ..Default::default() })
        .unwrap();
    assert_eq!(r1.epoch_losses, r2.epoch_losses);
    assert_eq!(weight_bits(&chunked_one), weight_bits(&baseline));
}
