//! Property tests pinning the packed-batch training engine to the
//! autograd tape, the gradient oracle: on arbitrary generated nets
//! (tree and non-tree) and arbitrary architecture variants, a
//! single-graph pack must reproduce the tape gradients exactly, and a
//! multi-graph pack must match the summed per-graph tape gradients
//! within 1e-6 relative error (the tall weight-grad GEMM regroups the
//! same terms). Plus behavioral pins: a short packed training run
//! reaches the same loss as the tape backend, and a poisoned batch
//! falls back to the per-graph tape without aborting the epoch.

use gnn::batch::GraphBatch;
use gnn::grad::TrainScratch;
use gnn::models::{GnnTrans, GnnTransConfig, GraphModel};
use gnn::train::{train, TrainBackend, TrainConfig};
use gnn::GnnError;
use netgen::nets::{NetConfig, NetGenerator};
use proptest::prelude::*;
use tensor::{Mat, Tape};

const NODE_DIM: usize = 5;
const PATH_DIM: usize = 3;

fn batch_for(seed: u64, nontree: bool) -> GraphBatch {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 20,
        ..Default::default()
    };
    let net = NetGenerator::new(seed, cfg).net(format!("g{seed}"), nontree);
    let n = net.node_count();
    let x = Mat::from_vec(
        n,
        NODE_DIM,
        (0..n * NODE_DIM)
            .map(|i| ((i as f32 + seed as f32) * 0.41).sin() * 0.5)
            .collect(),
    )
    .expect("sized");
    let paths = net.paths().len();
    let pf = (0..paths)
        .map(|i| Mat::row_vector(vec![i as f32 * 0.1, -0.2, 0.3]))
        .collect();
    let t = Mat::from_vec(
        paths,
        2,
        (0..paths * 2)
            .map(|i| ((i as f32 + seed as f32) * 0.23).cos() * 0.4 + 0.5)
            .collect(),
    )
    .expect("targets");
    GraphBatch::build(&net, x, pf, Some(t)).expect("valid batch")
}

fn model_for(
    seed: u64,
    gnn_layers: usize,
    attn_layers: usize,
    weighted: bool,
    norm: bool,
    pathfeat: bool,
) -> GnnTrans {
    let cfg = GnnTransConfig {
        node_dim: NODE_DIM,
        path_dim: PATH_DIM,
        hidden: 8,
        gnn_layers,
        attn_layers,
        heads: 2,
        mlp_hidden: 8,
        weighted_aggregation: weighted,
        attn_norm: norm,
        path_features: pathfeat,
    };
    GnnTrans::new(&cfg, seed)
}

/// The oracle: one graph's loss and gradients off a fresh tape.
fn tape_grads(model: &GnnTrans, batch: &GraphBatch) -> (f32, Vec<(usize, Mat)>) {
    let mut tape = Tape::new();
    let pred = model.forward(&mut tape, batch);
    let loss = tape.mse_loss(pred, batch.targets.as_ref().expect("labelled"));
    tape.backward(loss);
    (tape.value(loss).get(0, 0), tape.param_grads())
}

/// Infinity-norm relative deviation between two matrices.
fn rel_err(a: &Mat, b: &Mat) -> f32 {
    let mut num = 0.0f32;
    let mut den = 1e-9f32;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        num = num.max((x - y).abs());
        den = den.max(x.abs()).max(y.abs());
    }
    num / den
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A pack of one graph is the tape, value for value: same losses,
    /// same gradient matrices (plain `f32` equality), same id order.
    #[test]
    fn single_graph_pack_reproduces_tape_exactly(
        seed in 0u64..10_000,
        nontree in any::<bool>(),
        gnn_layers in 1usize..3,
        attn_layers in 1usize..3,
        weighted in any::<bool>(),
        norm in any::<bool>(),
        pathfeat in any::<bool>(),
    ) {
        let model = model_for(seed, gnn_layers, attn_layers, weighted, norm, pathfeat);
        let trainer = model.packed_trainer().expect("GnnTrans packs");
        let batch = batch_for(seed, nontree);
        let (tape_loss, oracle) = tape_grads(&model, &batch);
        let mut scratch = TrainScratch::new();
        let step = trainer.step(model.param_set(), &[&batch], &mut scratch).expect("step");
        prop_assert_eq!(step.losses, vec![tape_loss]);
        prop_assert_eq!(step.grads.len(), oracle.len());
        for ((id_p, g_p), (id_t, g_t)) in step.grads.iter().zip(&oracle) {
            prop_assert_eq!(id_p, id_t, "gradient order diverged from tape");
            prop_assert_eq!(g_p, g_t, "param {} diverged", model.param_set().name(*id_p));
        }
    }

    /// A multi-graph pack matches the tape sum within 1e-6 relative
    /// (weight grads regroup into one tall GEMM); per-graph losses stay
    /// bit-identical regardless of pack composition.
    #[test]
    fn multi_graph_pack_is_pinned_to_tape_sum(
        seed in 0u64..10_000,
        k in 2usize..6,
        weighted in any::<bool>(),
        norm in any::<bool>(),
    ) {
        let model = model_for(seed, 2, 1, weighted, norm, true);
        let trainer = model.packed_trainer().expect("GnnTrans packs");
        let batches: Vec<GraphBatch> =
            (0..k).map(|i| batch_for(seed + i as u64, i % 2 == 1)).collect();
        let refs: Vec<&GraphBatch> = batches.iter().collect();
        let mut scratch = TrainScratch::new();
        let step = trainer.step(model.param_set(), &refs, &mut scratch).expect("step");

        let mut tape_losses = Vec::with_capacity(k);
        let mut oracle: Vec<(usize, Mat)> = Vec::new();
        for b in &batches {
            let (loss, grads) = tape_grads(&model, b);
            tape_losses.push(loss);
            for (id, g) in grads {
                match oracle.iter_mut().find(|(i, _)| *i == id) {
                    Some((_, acc)) => acc.axpy(1.0, &g),
                    None => oracle.push((id, g)),
                }
            }
        }
        prop_assert_eq!(step.losses, tape_losses);
        for ((id_p, g_p), (id_t, g_t)) in step.grads.iter().zip(&oracle) {
            prop_assert_eq!(id_p, id_t);
            let rel = rel_err(g_p, g_t);
            prop_assert!(
                rel <= 1e-6,
                "param {} rel err {} exceeds 1e-6",
                model.param_set().name(*id_p),
                rel
            );
        }
    }
}

/// Trained-model quality is unchanged: at `accum = 1` the packed
/// backend IS the tape run bit for bit; at `accum > 1` the regrouped
/// weight-grad sums keep the loss within noise of the tape backend.
#[test]
fn packed_training_reaches_tape_loss() {
    let batches: Vec<GraphBatch> = (0..8).map(|i| batch_for(100 + i, i.is_multiple_of(3))).collect();
    let cfg_for = |backend: TrainBackend, accum: usize| TrainConfig {
        epochs: 6,
        seed: 7,
        accum,
        backend,
        ..Default::default()
    };

    // accum = 1: single-graph packs are exact, so the whole training
    // trajectory is bit-identical.
    let mut tape_model = model_for(3, 2, 1, true, true, true);
    let tape = train(&mut tape_model, &batches, &cfg_for(TrainBackend::Tape, 1)).unwrap();
    let mut packed_model = model_for(3, 2, 1, true, true, true);
    let packed = train(&mut packed_model, &batches, &cfg_for(TrainBackend::Packed, 1)).unwrap();
    assert_eq!(tape.epoch_losses, packed.epoch_losses);
    assert_eq!(
        tape_model.predict(&batches[0]),
        packed_model.predict(&batches[0])
    );
    assert!(packed.fallbacks == 0 && packed.arena_bytes_peak > 0);
    assert!(packed.graphs_per_s > 0.0);

    // accum = 4: trajectories may differ in the last bits; final loss
    // must agree within noise and both must actually learn.
    let mut tape_model = model_for(3, 2, 1, true, true, true);
    let tape = train(&mut tape_model, &batches, &cfg_for(TrainBackend::Tape, 4)).unwrap();
    let mut packed_model = model_for(3, 2, 1, true, true, true);
    let packed = train(&mut packed_model, &batches, &cfg_for(TrainBackend::Packed, 4)).unwrap();
    let (lt, lp) = (tape.final_loss(), packed.final_loss());
    assert!(
        (lt - lp).abs() <= 1e-4 * lt.abs().max(lp.abs()).max(1e-3),
        "packed final loss {lp} drifted from tape {lp} vs {lt}"
    );
    assert!(lt < tape.epoch_losses[0], "tape backend must learn");
    assert!(lp < packed.epoch_losses[0], "packed backend must learn");
}

/// A poisoned batch (non-finite features) makes the packed step
/// non-finite; the trainer re-runs that pack on the per-graph tape —
/// counted in `train.fallbacks` — finishes the epoch, and reports the
/// same divergence the tape backend would.
#[test]
fn poisoned_batch_falls_back_to_tape_without_aborting_epoch() {
    let mut batches: Vec<GraphBatch> = (0..4).map(|i| batch_for(200 + i, false)).collect();
    let rows = batches[1].x.rows();
    batches[1].x = Mat::full(rows, NODE_DIM, f32::NAN);

    let fallback_count = || {
        obs::metrics::snapshot()
            .counters
            .iter()
            .filter(|(k, _)| k.name == "train.fallbacks")
            .map(|(_, v)| *v)
            .sum::<u64>()
    };
    let before = fallback_count();

    let cfg = TrainConfig {
        epochs: 1,
        seed: 0,
        accum: 4, // one chunk = one pack holding the poisoned graph
        backend: TrainBackend::Packed,
        ..Default::default()
    };
    let mut model = model_for(5, 2, 1, true, true, true);
    let err = train(&mut model, &batches, &cfg).unwrap_err();
    assert!(
        matches!(err, GnnError::Diverged { epoch: 0 }),
        "poisoned data must surface as divergence, got {err:?}"
    );
    assert!(
        fallback_count() > before,
        "packed trainer must count tape fallbacks for the poisoned pack"
    );

    // The tape backend diverges identically — the fallback changes
    // accounting, not semantics.
    let mut model = model_for(5, 2, 1, true, true, true);
    let tape_err = train(
        &mut model,
        &batches,
        &TrainConfig {
            backend: TrainBackend::Tape,
            ..cfg
        },
    )
    .unwrap_err();
    assert!(matches!(tape_err, GnnError::Diverged { epoch: 0 }));
}
