//! Property-based gradient checks: random shapes and values through
//! composite tape programs must match central finite differences.

use proptest::prelude::*;
use tensor::{Mat, Tape, Var};

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-0.9f32..0.9, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v).expect("sized"))
}

/// Checks analytic vs numeric gradients of a scalar-valued builder.
fn grad_check<F>(input: &Mat, build: F) -> Result<(), TestCaseError>
where
    F: Fn(&mut Tape, Var) -> Var,
{
    let mut tape = Tape::new();
    let x = tape.param(0, input.clone());
    let loss = build(&mut tape, x);
    tape.backward(loss);
    let analytic = tape.grad(x).clone();

    let h = 2e-2f32;
    for k in 0..input.as_slice().len() {
        let eval = |delta: f32| {
            let mut m = input.clone();
            m.as_mut_slice()[k] += delta;
            let mut t = Tape::new();
            let x = t.constant(m);
            let l = build(&mut t, x);
            t.value(l).get(0, 0)
        };
        let numeric = (eval(h) - eval(-h)) / (2.0 * h);
        let a = analytic.as_slice()[k];
        let tol = 5e-2 * (1.0 + a.abs().max(numeric.abs()));
        prop_assert!(
            (a - numeric).abs() < tol,
            "element {k}: analytic {a} vs numeric {numeric}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn composite_linear_relu_chain(rows in 1usize..4, cols in 1usize..4,
                                   x in mat_strategy(3, 3)) {
        // Shapes vary through the weight; x fixed 3x3.
        let w = Mat::full(3, cols.max(1), 0.3);
        let _ = rows;
        grad_check(&x, move |t, xv| {
            let wv = t.constant(w.clone());
            let y = t.matmul(xv, wv);
            let y = t.relu(y);
            let target = Mat::full(3, w.cols(), 0.1);
            t.mse_loss(y, &target)
        })?;
    }

    #[test]
    fn softmax_attention_block(x in mat_strategy(4, 4)) {
        grad_check(&x, |t, xv| {
            let kt = t.transpose(xv);
            let scores = t.matmul(xv, kt);
            let scores = t.scale(scores, 0.5);
            let attn = t.softmax_rows(scores);
            let out = t.matmul(attn, xv);
            t.mse_loss(out, &Mat::zeros(4, 4))
        })?;
    }

    #[test]
    fn pooling_pipeline(x in mat_strategy(5, 3)) {
        grad_check(&x, |t, xv| {
            let gathered = t.gather_rows(xv, &[0, 2, 4, 2]);
            let pooled = t.mean_rows(gathered);
            let other = t.constant(Mat::full(1, 2, 0.2));
            let cat = t.concat_cols(pooled, other);
            t.mse_loss(cat, &Mat::zeros(1, 5))
        })?;
    }

    #[test]
    fn layer_norm_then_tanh(x in mat_strategy(3, 6)) {
        grad_check(&x, |t, xv| {
            let n = t.layer_norm_rows(xv, 1e-5);
            let y = t.tanh(n);
            t.mse_loss(y, &Mat::full(3, 6, 0.05))
        })?;
    }

    #[test]
    fn backward_is_repeatable(x in mat_strategy(3, 3)) {
        // Two backward passes through identical tapes give identical grads.
        let run = || {
            let mut t = Tape::new();
            let xv = t.param(0, x.clone());
            let s = t.sigmoid(xv);
            let l = t.mse_loss(s, &Mat::zeros(3, 3));
            t.backward(l);
            t.grad(xv).clone()
        };
        prop_assert_eq!(run(), run());
    }
}
