//! Minimal reverse-mode automatic differentiation over dense `f32`
//! matrices.
//!
//! The paper trains its models in PyTorch; no comparable Rust stack is
//! available offline, so this crate implements the small slice of a deep
//! learning framework that the GNNTrans equations (1)–(6) and the baseline
//! models actually need:
//!
//! * [`Mat`] — a dense `f32` matrix with the usual kernels;
//! * [`Tape`] — a gradient tape: build a computation with matmuls,
//!   activations, softmax attention, row gathers, concatenations and an
//!   MSE loss, then call [`Tape::backward`] to populate gradients;
//! * [`optim`] — SGD and Adam over a named [`ParamSet`];
//! * [`init`] — deterministic Xavier/He initialization (internal
//!   SplitMix64 stream, no external RNG dependency);
//! * [`serialize`] — a little-endian binary save/load format for
//!   parameter sets;
//! * [`infer`] — tape-free forward-only ops over a reusable buffer
//!   [`infer::Arena`] for the serving hot path (bit-identical to the
//!   tape forward);
//! * [`grad`] — tape-free backward kernels (matmul grads via fused
//!   `gemm_tn`/`gemm_nt`, segment-masked softmax backward, layer-norm
//!   backward, segment mean-rows backward) so packed training runs
//!   without tape construction, pinned to [`Tape`] gradients.
//!
//! Every differentiable operation is verified against finite differences
//! in the test suite.
//!
//! # Examples
//!
//! Fit `y = 2x` with one weight:
//!
//! ```
//! use tensor::{Mat, Tape, optim::Sgd, ParamSet};
//!
//! let mut params = ParamSet::new();
//! let w = params.add("w", Mat::zeros(1, 1));
//! let mut sgd = Sgd::new(0.1);
//! for _ in 0..100 {
//!     let mut tape = Tape::new();
//!     let wv = tape.param(w, params.get(w).clone());
//!     let x = tape.constant(Mat::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap());
//!     let pred = tape.matmul(x, wv);
//!     let target = Mat::from_vec(4, 1, vec![2.0, 4.0, 6.0, 8.0]).unwrap();
//!     let loss = tape.mse_loss(pred, &target);
//!     tape.backward(loss);
//!     sgd.step(&mut params, &tape.param_grads());
//! }
//! assert!((params.get(w).get(0, 0) - 2.0).abs() < 1e-3);
//! ```

pub mod grad;
pub mod infer;
pub mod init;
pub mod kernels;
pub mod mat;
pub mod optim;
pub mod serialize;
pub mod tape;

pub use mat::Mat;
pub use optim::ParamSet;
pub use tape::{Tape, Var};

use std::error::Error;
use std::fmt;

/// Errors from tensor construction and serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Description of the failed operation and shapes.
        message: String,
    },
    /// Construction input was inconsistent.
    InvalidInput(String),
    /// A serialized parameter file was malformed.
    BadFormat(String),
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { message } => write!(f, "shape mismatch: {message}"),
            TensorError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            TensorError::BadFormat(m) => write!(f, "bad format: {m}"),
            TensorError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl Error for TensorError {}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e.to_string())
    }
}
