//! Cache-blocked, register-tiled `f32` GEMM kernels.
//!
//! Three entry points, all row-major, all accumulating in ascending-`k`
//! order per output element (so repeated calls are bit-identical and
//! the parallel/serial determinism contract upstream holds):
//!
//! * [`gemm`] — `C += A * B`, the workhorse behind [`crate::Mat::matmul`].
//! * [`gemm_tn`] — `C += Aᵀ * B` with `A` stored untransposed.
//! * [`gemm_nt`] — `C += A * Bᵀ` with `B` stored untransposed.
//!
//! The `_tn` / `_nt` variants exist for the autograd backward pass:
//! `d(A*B)` needs `G*Bᵀ` and `Aᵀ*G`, and materializing the transposes
//! first costs an extra allocation + copy per matmul gradient.
//!
//! # Blocking scheme
//!
//! [`gemm`] follows the classic three-level GotoBLAS decomposition,
//! sized small because every matrix this workspace multiplies is small
//! (node-count × feature-dim, at most a few hundred rows):
//!
//! * the `j` dimension is split into panels of `NC` columns and the `k`
//!   dimension into blocks of `KC` rows; each `KC x NC` block of `B` is
//!   **packed** into a contiguous scratch buffer so the micro-kernel
//!   streams it linearly regardless of `B`'s row stride;
//! * the micro-kernel computes an `MR x NR` (6 x 16) tile of `C` held
//!   entirely in registers — 12 8-lane accumulators plus the two `B`
//!   vectors and the `A` broadcast fill the 16 AVX registers;
//! * there is no per-element zero test (the seed kernel branched on
//!   `a == 0.0` for every scalar, which costs more than the multiply
//!   it occasionally saves, breaks vectorization, and breaks IEEE
//!   semantics for non-finite operands).
//!
//! # Dispatch
//!
//! The portable build targets baseline x86-64 (SSE2), which leaves
//! half the lanes and all fused multiply-adds on the table. Each entry
//! point therefore runtime-dispatches once per call to an
//! AVX2+FMA-compiled clone of the same body (`#[target_feature]` +
//! `#[inline(always)]` body, the std-only equivalent of function
//! multi-versioning) when the CPU supports it. The FMA path contracts
//! `mul`+`add` into one rounding; both paths keep the ascending-`k`
//! order, so each path is individually deterministic.

/// Micro-tile rows (of `A` / `C`).
const MR: usize = 6;
/// Micro-tile columns (of `B` / `C`); two 8-lane `f32` vectors.
const NR: usize = 16;
/// `k`-dimension cache block: `KC x NR` of packed `B` stays in L1.
const KC: usize = 128;
/// `j`-dimension cache block (columns of one packed `B` panel).
const NC: usize = 512;

/// Fused or separate multiply-accumulate, selected at monomorphization
/// time. `mul_add` only reaches hardware FMA inside the
/// `#[target_feature(enable = "fma")]` clone — in the portable clone it
/// would call the (slow) libm fallback, hence the flag.
#[inline(always)]
fn madd<const FMA: bool>(acc: f32, a: f32, b: f32) -> f32 {
    if FMA {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// `C += A * B` for row-major `A` (`m x k`), `B` (`k x n`), `C` (`m x n`).
///
/// Shape agreement is the caller's contract (the `Mat` wrappers assert
/// it); slice lengths are debug-asserted.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    {
        // SAFETY: the required target features were just detected.
        unsafe { gemm_avx2(m, k, n, a, b, c) };
        return;
    }
    gemm_body::<false>(m, k, n, a, b, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_body::<true>(m, k, n, a, b, c);
}

#[inline(always)]
fn gemm_body<const FMA: bool>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    // Reusable packing buffers per call: one KC x NC panel of B, one
    // MR x KC micro-panel of A (p-major, MR-interleaved, zero-padded on
    // the row edge so the micro-kernel never branches on `mr`).
    let mut panel = vec![0.0f32; KC.min(k) * NC.min(n)];
    let mut apack = vec![0.0f32; MR * KC.min(k)];
    for jj in (0..n).step_by(NC) {
        let nc = NC.min(n - jj);
        for kk in (0..k).step_by(KC) {
            let kc = KC.min(k - kk);
            // Pack B[kk..kk+kc, jj..jj+nc] row-contiguous.
            for p in 0..kc {
                let src = (kk + p) * n + jj;
                panel[p * nc..p * nc + nc].copy_from_slice(&b[src..src + nc]);
            }
            for ii in (0..m).step_by(MR) {
                let mr = MR.min(m - ii);
                // Pack A[ii..ii+mr, kk..kk+kc] as apack[p*MR + r].
                apack[..MR * kc].fill(0.0);
                for (r, row) in (ii..ii + mr).enumerate() {
                    for p in 0..kc {
                        apack[p * MR + r] = a[row * k + kk + p];
                    }
                }
                for jt in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jt);
                    micro_kernel::<FMA>(
                        &apack, &panel, c, n, nc, ii, jj + jt, jt, kc, mr, nr,
                    );
                }
            }
        }
    }
}

/// Computes one `mr x nr` tile of `C` (`mr <= MR`, `nr <= NR`) from the
/// packed A micro-panel (`apack[p * MR + r]`, zero-padded rows) and the
/// packed B panel (`kc x nc`, tile starting at column `jt`).
/// Accumulators live in a fixed-size register block; `k` ascends, so
/// per-element summation order is deterministic.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel<const FMA: bool>(
    apack: &[f32],
    panel: &[f32],
    c: &mut [f32],
    n: usize,
    nc: usize,
    ii: usize,
    j0: usize,
    jt: usize,
    kc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if nr == NR {
        // Full-width tile: fixed-bound loops the compiler unrolls and
        // vectorizes. Both operand streams are contiguous; the padded
        // A rows multiply into accumulators that are never stored.
        for p in 0..kc {
            let brow: &[f32; NR] = panel[p * nc + jt..p * nc + jt + NR]
                .try_into()
                .expect("packed tile row");
            let acol: &[f32; MR] = apack[p * MR..(p + 1) * MR]
                .try_into()
                .expect("packed A column");
            for (acc_row, &av) in acc.iter_mut().zip(acol) {
                for (s, &bv) in acc_row.iter_mut().zip(brow) {
                    *s = madd::<FMA>(*s, av, bv);
                }
            }
        }
    } else {
        // Edge tile: same loop with a runtime column bound.
        for p in 0..kc {
            let brow = &panel[p * nc + jt..p * nc + jt + nr];
            let acol = &apack[p * MR..(p + 1) * MR];
            for (acc_row, &av) in acc.iter_mut().zip(acol) {
                for (s, &bv) in acc_row.iter_mut().zip(brow) {
                    *s = madd::<FMA>(*s, av, bv);
                }
            }
        }
    }
    for (r, acc_row) in acc.iter().take(mr).enumerate() {
        let dst = &mut c[(ii + r) * n + j0..(ii + r) * n + j0 + nr];
        for (d, s) in dst.iter_mut().zip(acc_row) {
            *d += s;
        }
    }
}

/// `C += Aᵀ * B` for row-major `A` (`k x m`), `B` (`k x n`), `C` (`m x n`),
/// without materializing `Aᵀ`.
///
/// Walks `A` and `B` a row at a time (both contiguous) and applies
/// rank-1 updates to `C`; per output element `k` ascends.
pub fn gemm_tn(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    {
        // SAFETY: the required target features were just detected.
        unsafe { gemm_tn_avx2(k, m, n, a, b, c) };
        return;
    }
    gemm_tn_body::<false>(k, m, n, a, b, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_tn_avx2(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_tn_body::<true>(k, m, n, a, b, c);
}

#[inline(always)]
fn gemm_tn_body<const FMA: bool>(
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            for (d, &bv) in crow.iter_mut().zip(brow) {
                *d = madd::<FMA>(*d, av, bv);
            }
        }
    }
}

/// `C += A * Bᵀ` for row-major `A` (`m x k`), `B` (`n x k`), `C` (`m x n`),
/// without materializing `Bᵀ`.
///
/// Each output element is a dot product of two contiguous rows.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    {
        // SAFETY: the required target features were just detected.
        unsafe { gemm_nt_avx2(m, k, n, a, b, c) };
        return;
    }
    gemm_nt_body::<false>(m, k, n, a, b, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nt_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_body::<true>(m, k, n, a, b, c);
}

#[inline(always)]
fn gemm_nt_body<const FMA: bool>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, d) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            // Four partial sums break the serial FMA dependency chain;
            // the lane-merge order is fixed, so results stay
            // deterministic for a given build/CPU.
            let mut s = [0.0f32; 4];
            let mut chunks_a = arow.chunks_exact(4);
            let mut chunks_b = brow.chunks_exact(4);
            for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
                for l in 0..4 {
                    s[l] = madd::<FMA>(s[l], ca[l], cb[l]);
                }
            }
            let mut tail = 0.0f32;
            for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
                tail = madd::<FMA>(tail, x, y);
            }
            *d += ((s[0] + s[1]) + (s[2] + s[3])) + tail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: plain triple loop, `k` ascending.
    fn gemm_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] += s;
            }
        }
        c
    }

    fn fill(len: usize, seed: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i as f32 * 0.61 + seed).sin()) * 0.9)
            .collect()
    }

    fn assert_close(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                "{what} element {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn gemm_matches_reference_across_edge_shapes() {
        // Shapes straddling every blocking boundary: MR/NR edges, the
        // KC block edge, and the NC panel edge.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (6, 16, 16),
            (5, 9, 17),
            (13, 130, 9),
            (7, 127, 129),
            (2, 256, 3),
            (33, 24, 33),
            (64, 64, 64),
        ] {
            let a = fill(m * k, 1.0);
            let b = fill(k * n, 2.0);
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            assert_close(&c, &gemm_ref(m, k, n, &a, &b), &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn gemm_is_bitwise_repeatable() {
        // Determinism contract: the kernel sums in a fixed order, so
        // repeated invocations on the same inputs agree bit for bit.
        let (m, k, n) = (23, 300, 37);
        let a = fill(m * k, 3.0);
        let b = fill(k * n, 4.0);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c1);
        gemm(m, k, n, &a, &b, &mut c2);
        assert_eq!(
            c1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            c2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let (m, k, n) = (6, 11, 5);
        // A stored k x m, B stored k x n.
        let a = fill(k * m, 5.0);
        let b = fill(k * n, 6.0);
        let mut at = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let mut c_tn = vec![0.0f32; m * n];
        gemm_tn(k, m, n, &a, &b, &mut c_tn);
        assert_close(&c_tn, &gemm_ref(m, k, n, &at, &b), "tn");

        // A stored m x k, B stored n x k.
        let a2 = fill(m * k, 7.0);
        let b2 = fill(n * k, 8.0);
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b2[j * k + p];
            }
        }
        let mut c_nt = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a2, &b2, &mut c_nt);
        assert_close(&c_nt, &gemm_ref(m, k, n, &a2, &bt), "nt");
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let (m, k, n) = (2, 3, 2);
        let a = fill(m * k, 0.2);
        let b = fill(k * n, 0.4);
        let mut c = vec![1.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        let base = gemm_ref(m, k, n, &a, &b);
        for (got, exp) in c.iter().zip(&base) {
            assert!((got - (exp + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let mut c = vec![0.0f32; 0];
        gemm(0, 4, 0, &[], &[], &mut c);
        let mut c2 = vec![5.0f32; 4];
        gemm(2, 0, 2, &[], &[], &mut c2);
        assert_eq!(c2, vec![5.0; 4]);
    }
}
