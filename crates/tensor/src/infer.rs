//! Tape-free inference primitives.
//!
//! Serving never backprops, yet [`crate::Tape`] pays for gradients on
//! every op: a zero-filled gradient matrix per node, a fresh output
//! allocation per op, and op bookkeeping. This module provides the
//! inference-only counterparts: an [`Arena`] that recycles `f32`
//! buffers across forward passes (allocation-free once warm) and a set
//! of free functions that write into caller-provided [`Mat`]s using the
//! same kernels — and, crucially, the *same accumulation order* — as
//! the tape ops, so a tape-free forward pass reproduces the tape
//! forward bit for bit.
//!
//! Row-range variants ([`matmul_rows_into`], [`matmul_seg_into`],
//! [`transpose_rows_into`]) operate on contiguous row windows of a tall
//! matrix without copying. They exist for cross-graph packing: K graphs'
//! node matrices stacked into one tall operand share the big GEMMs,
//! while per-graph ops (adjacency aggregation, attention) address only
//! their own row segment. The blocked GEMM computes every output row
//! with a per-row accumulator in ascending-`k` order regardless of the
//! row's position or the total row count, so a segment's results are
//! bit-identical whether it is packed alone or with neighbours (pinned
//! by `gemm_rows_are_position_independent`).

use crate::kernels;
use crate::Mat;


/// A pool of reusable `f32` buffers for tape-free forward passes.
///
/// [`Arena::take`] hands out a `rows x cols` [`Mat`] with *unspecified*
/// contents (stale values from a previous loan — every consumer in the
/// forward pass fully overwrites its buffer, so zeroing here would be a
/// second memset per buffer per pass). It reuses the capacity of a
/// previously [`Arena::give`]n buffer when one fits (the smallest
/// sufficient one, else the largest is grown in place). After a warm-up
/// pass over the largest batch shape, steady-state forwards allocate
/// nothing.
///
/// # Examples
///
/// ```
/// use tensor::infer::Arena;
///
/// let mut arena = Arena::new();
/// let a = arena.take(4, 4);
/// arena.give(a);
/// let warm = arena.bytes();
/// let b = arena.take(2, 3); // reuses the 4x4 buffer's storage
/// arena.give(b);
/// assert_eq!(arena.bytes(), warm);
/// ```
#[derive(Debug, Default)]
pub struct Arena {
    free: Vec<Vec<f32>>,
    /// Bytes currently loaned out through [`Arena::take`].
    loaned_bytes: usize,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// A `rows x cols` matrix of unspecified contents backed by
    /// recycled storage when a pooled buffer fits. Callers must fully
    /// overwrite the buffer before reading it (all `tensor::infer` ops
    /// that produce a matrix do).
    pub fn take(&mut self, rows: usize, cols: usize) -> Mat {
        let need = rows * cols;
        // Best fit: the smallest pooled buffer that already holds
        // `need`; otherwise the largest, which `resize` grows in place.
        let mut pick: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            let better = match pick {
                None => true,
                Some(j) => {
                    let best = self.free[j].capacity();
                    if best >= need {
                        cap >= need && cap < best
                    } else {
                        cap > best
                    }
                }
            };
            if better {
                pick = Some(i);
            }
        }
        let mut data = match pick {
            Some(i) => self.free.swap_remove(i),
            None => Vec::new(),
        };
        // Only the length delta is written (zeros); existing elements
        // keep their stale values — no full memset on the hot path.
        data.resize(need, 0.0);
        self.loaned_bytes += data.capacity() * std::mem::size_of::<f32>();
        Mat::from_vec(rows, cols, data).expect("arena sizes its own buffers")
    }

    /// Returns a matrix's storage to the pool.
    pub fn give(&mut self, m: Mat) {
        let data = m.into_vec();
        let bytes = data.capacity() * std::mem::size_of::<f32>();
        self.loaned_bytes = self.loaned_bytes.saturating_sub(bytes);
        self.free.push(data);
    }

    /// Total bytes held: pooled buffer capacity plus outstanding loans.
    /// Exported as the `infer.arena_bytes` gauge.
    pub fn bytes(&self) -> usize {
        self.free
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum::<usize>()
            + self.loaned_bytes
    }

    /// Number of pooled (idle) buffers.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// `out = a * b` via the blocked GEMM. `out` is fully overwritten.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matmul_into(a: &Mat, b: &Mat, out: &mut Mat) {
    assert_eq!(a.cols(), b.rows(), "matmul_into inner dim");
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul_into out shape");
    out.as_mut_slice().fill(0.0);
    kernels::gemm(
        a.rows(),
        a.cols(),
        b.cols(),
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `out[out_row0..][..rows] = a[a_row0..][..rows] * b`: multiplies a
/// contiguous row window of `a` by `b`, writing into a row window of
/// `out`. No copies — the windows are used in place.
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn matmul_rows_into(
    a: &Mat,
    a_row0: usize,
    rows: usize,
    b: &Mat,
    out: &mut Mat,
    out_row0: usize,
) {
    assert_eq!(a.cols(), b.rows(), "matmul_rows_into inner dim");
    assert_eq!(out.cols(), b.cols(), "matmul_rows_into out width");
    assert!(a_row0 + rows <= a.rows(), "matmul_rows_into a bounds");
    assert!(out_row0 + rows <= out.rows(), "matmul_rows_into out bounds");
    let k = a.cols();
    let n = b.cols();
    let a_view = &a.as_slice()[a_row0 * k..(a_row0 + rows) * k];
    let c_view = &mut out.as_mut_slice()[out_row0 * n..(out_row0 + rows) * n];
    c_view.fill(0.0);
    kernels::gemm(rows, k, n, a_view, b.as_slice(), c_view);
}

/// `out[out_row0..] = a * b[b_row0..][..a.cols()]`: multiplies `a` by a
/// contiguous row window of `b` (the per-segment adjacency aggregation
/// `A_s · X_s` of a packed batch), writing into a row window of `out`.
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn matmul_seg_into(a: &Mat, b: &Mat, b_row0: usize, out: &mut Mat, out_row0: usize) {
    let k = a.cols();
    assert!(b_row0 + k <= b.rows(), "matmul_seg_into b bounds");
    assert_eq!(out.cols(), b.cols(), "matmul_seg_into out width");
    assert!(out_row0 + a.rows() <= out.rows(), "matmul_seg_into out bounds");
    let n = b.cols();
    let b_view = &b.as_slice()[b_row0 * n..(b_row0 + k) * n];
    let c_view = &mut out.as_mut_slice()[out_row0 * n..(out_row0 + a.rows()) * n];
    c_view.fill(0.0);
    kernels::gemm(a.rows(), k, n, a.as_slice(), b_view, c_view);
}

/// `dst += src` element-wise.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn add_assign(dst: &mut Mat, src: &Mat) {
    assert_eq!(dst.shape(), src.shape(), "add_assign shape mismatch");
    for (d, s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d += s;
    }
}

/// Adds a `1 x cols` bias row to every row of `dst`.
///
/// # Panics
///
/// Panics when `bias` is not `1 x dst.cols`.
pub fn add_bias_rows(dst: &mut Mat, bias: &Mat) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), dst.cols(), "bias width mismatch");
    let cols = dst.cols();
    for (i, d) in dst.as_mut_slice().iter_mut().enumerate() {
        *d += bias.as_slice()[i % cols];
    }
}

/// In-place ReLU.
pub fn relu_inplace(m: &mut Mat) {
    for x in m.as_mut_slice() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// In-place scalar multiply.
pub fn scale_inplace(m: &mut Mat, s: f32) {
    for x in m.as_mut_slice() {
        *x *= s;
    }
}

/// In-place row-wise softmax with max-subtraction, matching
/// [`crate::Tape::softmax_rows`] term for term.
pub fn softmax_rows_inplace(m: &mut Mat) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = &mut m.as_mut_slice()[r * cols..(r + 1) * cols];
        let row_max = row.iter().fold(f32::NEG_INFINITY, |acc, &x| acc.max(x));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            let e = (*v - row_max).exp();
            *v = e;
            sum += e;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Per-row layer norm of `src` written to `out` (same accumulation
/// order as [`crate::Tape::layer_norm_rows`]). `src` stays intact for
/// the residual connection.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn layer_norm_rows_into(src: &Mat, eps: f32, out: &mut Mat) {
    assert_eq!(src.shape(), out.shape(), "layer_norm shape mismatch");
    let n = src.cols() as f32;
    let cols = src.cols();
    for r in 0..src.rows() {
        let row = src.row(r);
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        let inv_sigma = 1.0 / (var + eps).sqrt();
        let out_row = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
        for (o, &x) in out_row.iter_mut().zip(row) {
            *o = (x - mean) * inv_sigma;
        }
    }
}

/// Transposes a contiguous row window `src[row0..row0+rows]` into `out`
/// (`src_cols x rows`) — the attention `K_sᵀ` without touching other
/// segments.
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn transpose_rows_into(src: &Mat, row0: usize, rows: usize, out: &mut Mat) {
    assert!(row0 + rows <= src.rows(), "transpose_rows_into bounds");
    assert_eq!(out.shape(), (src.cols(), rows), "transpose_rows_into out");
    for i in 0..rows {
        let s = src.row(row0 + i);
        for (j, &v) in s.iter().enumerate() {
            out.as_mut_slice()[j * rows + i] = v;
        }
    }
}

/// Copies `src` into `dst` starting at column `col0` (row counts must
/// match) — the concatenation primitive.
///
/// # Panics
///
/// Panics on bounds mismatch.
pub fn copy_cols(dst: &mut Mat, col0: usize, src: &Mat) {
    assert_eq!(dst.rows(), src.rows(), "copy_cols row mismatch");
    assert!(col0 + src.cols() <= dst.cols(), "copy_cols bounds");
    let dc = dst.cols();
    let sc = src.cols();
    for r in 0..src.rows() {
        let d = &mut dst.as_mut_slice()[r * dc + col0..r * dc + col0 + sc];
        d.copy_from_slice(src.row(r));
    }
}

/// Writes the mean of `src`'s rows selected by `indices` (in order, as
/// the tape's gather-then-mean does) into row `out_row` of `out`.
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn mean_rows_into(src: &Mat, indices: &[usize], out: &mut Mat, out_row: usize) {
    assert!(!indices.is_empty(), "mean over zero rows");
    assert_eq!(src.cols(), out.cols(), "mean_rows_into width mismatch");
    let cols = out.cols();
    let acc = &mut out.as_mut_slice()[out_row * cols..(out_row + 1) * cols];
    acc.fill(0.0);
    for &i in indices {
        for (a, &v) in acc.iter_mut().zip(src.row(i)) {
            *a += v;
        }
    }
    let inv = 1.0 / indices.len() as f32;
    for a in acc.iter_mut() {
        *a *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    fn sample(rows: usize, cols: usize, seed: f32) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 * 0.61 + seed).sin()) * 0.9;
        }
        m
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut a = Arena::new();
        let m = a.take(8, 8);
        assert_eq!(m.shape(), (8, 8));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        a.give(m);
        let warm = a.bytes();
        assert!(warm >= 64 * 4);
        // A smaller take reuses the same storage; contents are
        // unspecified (stale values are allowed — consumers overwrite).
        let mut m2 = a.take(3, 5);
        assert_eq!(m2.shape(), (3, 5));
        m2.set(0, 0, 7.0);
        a.give(m2);
        assert_eq!(a.bytes(), warm);
        let m3 = a.take(3, 5);
        assert_eq!(m3.shape(), (3, 5));
        a.give(m3);
        assert_eq!(a.pooled(), 1);
    }

    #[test]
    fn arena_best_fit_prefers_smallest_sufficient() {
        let mut a = Arena::new();
        let big = a.take(100, 1);
        let small = a.take(10, 1);
        a.give(big);
        a.give(small);
        let before = a.bytes();
        let m = a.take(2, 3); // must pick the 10-capacity buffer
        assert!(m.as_slice().len() == 6);
        a.give(m);
        assert_eq!(a.bytes(), before, "no growth when a fit exists");
    }

    #[test]
    fn matmul_into_matches_mat_matmul() {
        let a = sample(5, 7, 0.1);
        let b = sample(7, 4, 0.7);
        let mut out = Mat::full(5, 4, 9.0); // stale values must be cleared
        matmul_into(&a, &b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn gemm_rows_are_position_independent() {
        // The packing bit-identity contract: a row's GEMM result must not
        // depend on which rows surround it or on the total row count.
        let b = sample(9, 13, 0.5);
        let solo = sample(3, 9, 1.2);
        // Embed `solo` as rows 17..20 of a 40-row matrix.
        let mut tall = sample(40, 9, 3.3);
        for r in 0..3 {
            for c in 0..9 {
                tall.set(17 + r, c, solo.get(r, c));
            }
        }
        let want = solo.matmul(&b);
        let got_tall = tall.matmul(&b);
        for r in 0..3 {
            assert_eq!(got_tall.row(17 + r), want.row(r), "row {r} drifted");
        }
        // And the row-window entry point agrees bit for bit too.
        let mut out = Mat::zeros(40, 13);
        matmul_rows_into(&tall, 17, 3, &b, &mut out, 17);
        for r in 0..3 {
            assert_eq!(out.row(17 + r), want.row(r));
        }
    }

    #[test]
    fn seg_matmul_matches_explicit_slice() {
        // adj_s * X_s on a row window == the same product on a copied-out
        // segment.
        let adj = sample(4, 4, 2.0);
        let tall = sample(10, 6, 0.3);
        let mut seg = Mat::zeros(4, 6);
        for r in 0..4 {
            for c in 0..6 {
                seg.set(r, c, tall.get(3 + r, c));
            }
        }
        let want = adj.matmul(&seg);
        let mut out = Mat::zeros(10, 6);
        matmul_seg_into(&adj, &tall, 3, &mut out, 3);
        for r in 0..4 {
            assert_eq!(out.row(3 + r), want.row(r));
        }
    }

    #[test]
    fn elementwise_ops_match_tape() {
        let x = sample(4, 6, 0.9);
        let bias = sample(1, 6, 4.0);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let bv = tape.constant(bias.clone());
        let biased = tape.add_bias_rows(xv, bv);
        let relued = tape.relu(biased);
        let scaled = tape.scale(relued, 0.37);
        let soft = tape.softmax_rows(scaled);
        let normed = tape.layer_norm_rows(xv, 1e-5);

        let mut m = x.clone();
        add_bias_rows(&mut m, &bias);
        assert_eq!(&m, tape.value(biased));
        relu_inplace(&mut m);
        assert_eq!(&m, tape.value(relued));
        scale_inplace(&mut m, 0.37);
        assert_eq!(&m, tape.value(scaled));
        softmax_rows_inplace(&mut m);
        assert_eq!(&m, tape.value(soft));

        let mut ln = Mat::zeros(4, 6);
        layer_norm_rows_into(&x, 1e-5, &mut ln);
        assert_eq!(&ln, tape.value(normed));

        let y = sample(4, 6, 7.0);
        let yv = tape.constant(y.clone());
        let sum = tape.add(xv, yv);
        let mut s = x.clone();
        add_assign(&mut s, &y);
        assert_eq!(&s, tape.value(sum));
    }

    #[test]
    fn pooling_and_concat_match_tape() {
        let x = sample(7, 5, 1.4);
        let idx = vec![2usize, 0, 5, 5];
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let gathered = tape.gather_rows(xv, &idx);
        let mean = tape.mean_rows(gathered);
        let mut out = Mat::full(3, 5, 2.0);
        mean_rows_into(&x, &idx, &mut out, 1);
        assert_eq!(out.row(1), tape.value(mean).row(0));

        let a = sample(3, 2, 0.2);
        let b = sample(3, 4, 0.8);
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let cat = tape.concat_cols(av, bv);
        let mut dst = Mat::zeros(3, 6);
        copy_cols(&mut dst, 0, &a);
        copy_cols(&mut dst, 2, &b);
        assert_eq!(&dst, tape.value(cat));
    }

    #[test]
    fn transpose_window_matches_tape_transpose() {
        let x = sample(9, 4, 0.6);
        let mut seg = Mat::zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                seg.set(r, c, x.get(5 + r, c));
            }
        }
        let mut tape = Tape::new();
        let sv = tape.constant(seg.clone());
        let t = tape.transpose(sv);
        let mut out = Mat::zeros(4, 3);
        transpose_rows_into(&x, 5, 3, &mut out);
        assert_eq!(&out, tape.value(t));
    }
}
