//! Dense row-major `f32` matrix kernels used by the autograd tape.

use crate::TensorError;
use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use tensor::Mat;
///
/// let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Mat::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// A `rows` x `cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix with every element set to `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Mat {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// The `n` x `n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidInput`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidInput(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Mat { rows, cols, data })
    }

    /// A 1 x n row matrix.
    pub fn row_vector(data: Vec<f32>) -> Self {
        Mat {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consumes the matrix, returning its row-major storage with its
    /// capacity intact — the buffer-recycling hook used by
    /// [`crate::infer::Arena`].
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product, via the cache-blocked register-tiled kernel
    /// ([`crate::kernels::gemm`]). Shapes must agree.
    ///
    /// # Panics
    ///
    /// Panics when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        crate::kernels::gemm(
            self.rows, self.cols, rhs.cols, &self.data, &rhs.data, &mut out.data,
        );
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose: `self` is
    /// `k x m`, `rhs` is `k x n`, the result is `m x n`. The autograd
    /// backward pass uses this for weight gradients (`Aᵀ * G`).
    ///
    /// # Panics
    ///
    /// Panics when `self.rows != rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.cols, rhs.cols);
        crate::kernels::gemm_tn(
            self.rows, self.cols, rhs.cols, &self.data, &rhs.data, &mut out.data,
        );
        out
    }

    /// `self * rhsᵀ` without materializing the transpose: `self` is
    /// `m x k`, `rhs` is `n x k`, the result is `m x n`. The autograd
    /// backward pass uses this for input gradients (`G * Bᵀ`).
    ///
    /// # Panics
    ///
    /// Panics when `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.rows);
        crate::kernels::gemm_nt(
            self.rows, self.cols, rhs.rows, &self.data, &rhs.data, &mut out.data,
        );
        out
    }

    /// The seed scalar matmul (branchy `i-k-j` triple loop), kept as a
    /// correctness oracle and the baseline the `compute` benchmark
    /// measures kernel speedups against.
    ///
    /// # Panics
    ///
    /// Panics when `self.cols != rhs.rows`.
    pub fn matmul_reference(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let out_row = i * rhs.cols;
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scaled copy.
    pub fn scale(&self, s: f32) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// In-place `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Largest absolute element, 0 when empty.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert!(Mat::from_vec(2, 2, vec![1.0]).is_err());
        assert_eq!(Mat::row_vector(vec![1., 2.]).shape(), (1, 2));
        assert_eq!(Mat::full(2, 2, 7.0).sum(), 28.0);
    }

    #[test]
    fn matmul_identity_and_hand_check() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(a.matmul(&Mat::eye(2)), a);
        let b = Mat::from_vec(2, 1, vec![1., -1.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[-1., -1.]);
    }

    fn assert_close(got: &Mat, want: &Mat) {
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() <= 1e-5 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    #[test]
    fn matmul_matches_reference_kernel() {
        // The blocked kernel and the seed scalar kernel agree to rounding
        // (the FMA dispatch path fuses mul+add, so bitwise equality with
        // the scalar loop is not guaranteed), including on a matrix with
        // explicit zeros (the seed kernel's skip path).
        let mut a = Mat::from_vec(5, 7, (0..35).map(|i| (i as f32 * 0.3).sin()).collect()).unwrap();
        let b = Mat::from_vec(7, 9, (0..63).map(|i| (i as f32 * 0.7).cos()).collect()).unwrap();
        a.set(0, 0, 0.0);
        a.set(3, 4, 0.0);
        assert_close(&a.matmul(&b), &a.matmul_reference(&b));
    }

    #[test]
    fn fused_transpose_variants_match_explicit_transpose() {
        let a = Mat::from_vec(4, 3, (0..12).map(|i| (i as f32 * 0.9).sin()).collect()).unwrap();
        let g = Mat::from_vec(4, 5, (0..20).map(|i| (i as f32 * 0.4).cos()).collect()).unwrap();
        // Aᵀ * G, A stored 4x3 -> result 3x5.
        assert_close(&a.matmul_tn(&g), &a.transpose().matmul(&g));
        // G * Aᵀ ... use shapes m x k, n x k: G (4x5), W (3x5) -> 4x3.
        let w = Mat::from_vec(3, 5, (0..15).map(|i| (i as f32 * 1.1).sin()).collect()).unwrap();
        assert_close(&g.matmul_nt(&w), &g.matmul(&w.transpose()));
    }

    #[test]
    #[should_panic]
    fn matmul_tn_checks_inner_dim() {
        let a = Mat::zeros(3, 2);
        let b = Mat::zeros(2, 4);
        let _ = a.matmul_tn(&b);
    }

    #[test]
    fn transpose_and_norms() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(a.max_abs(), 6.0);
        assert!((Mat::from_vec(1, 2, vec![3., 4.]).unwrap().norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn elementwise_ops() {
        let a = Mat::from_vec(1, 3, vec![1., 2., 3.]).unwrap();
        let b = Mat::from_vec(1, 3, vec![2., 0., -1.]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[3., 2., 2.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2., 0., -3.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[2., 2., 2.5]);
    }
}
