//! Deterministic weight initialization.
//!
//! Uses an internal SplitMix64 stream so the crate needs no RNG dependency
//! and every training run is exactly reproducible from a seed.

use crate::Mat;

/// A tiny deterministic pseudo-random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct InitRng {
    state: u64,
}

impl InitRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        InitRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[-1, 1)`.
    pub fn uniform(&mut self) -> f32 {
        let v = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        2.0 * v - 1.0
    }
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The right default for linear and
/// attention projections.
pub fn xavier(rows: usize, cols: usize, rng: &mut InitRng) -> Mat {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let mut m = Mat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.uniform() * a;
    }
    m
}

/// He/Kaiming uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// Preferred in front of ReLU activations.
pub fn he(rows: usize, cols: usize, rng: &mut InitRng) -> Mat {
    let a = (6.0 / rows as f32).sqrt();
    let mut m = Mat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.uniform() * a;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = xavier(4, 4, &mut InitRng::new(42));
        let b = xavier(4, 4, &mut InitRng::new(42));
        assert_eq!(a, b);
        let c = xavier(4, 4, &mut InitRng::new(43));
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_bound() {
        let m = xavier(10, 20, &mut InitRng::new(1));
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn he_respects_bound() {
        let m = he(10, 20, &mut InitRng::new(1));
        let bound = (6.0f32 / 10.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn uniform_covers_both_signs() {
        let mut rng = InitRng::new(7);
        let vals: Vec<f32> = (0..100).map(|_| rng.uniform()).collect();
        assert!(vals.iter().any(|&v| v > 0.0));
        assert!(vals.iter().any(|&v| v < 0.0));
        assert!(vals.iter().all(|&v| (-1.0..1.0).contains(&v)));
    }
}
