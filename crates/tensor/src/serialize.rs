//! Binary save/load for [`ParamSet`] — a tiny self-contained format so the
//! workspace needs no serialization stack.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"WTPS"
//! u32    version (1)
//! u32    parameter count
//! repeat:
//!   u32        name length, then UTF-8 name bytes
//!   u32 u32    rows, cols
//!   f32 * n    row-major data
//! ```

use crate::{Mat, ParamSet, TensorError};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"WTPS";
const VERSION: u32 = 1;

/// Writes a parameter set to `w`.
///
/// # Errors
///
/// Propagates I/O failures as [`TensorError::Io`].
pub fn save<W: Write>(params: &ParamSet, mut w: W) -> Result<(), TensorError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, mat) in params.iter() {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(mat.rows() as u32).to_le_bytes())?;
        w.write_all(&(mat.cols() as u32).to_le_bytes())?;
        for v in mat.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, TensorError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads a parameter set from `r`.
///
/// # Errors
///
/// Returns [`TensorError::BadFormat`] on a wrong magic, version, or
/// truncated payload, and [`TensorError::Io`] on read failures.
pub fn load<R: Read>(mut r: R) -> Result<ParamSet, TensorError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TensorError::BadFormat("wrong magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(TensorError::BadFormat(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(&mut r)? as usize;
    let mut params = ParamSet::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 20 {
            return Err(TensorError::BadFormat("absurd name length".into()));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| TensorError::BadFormat("name is not UTF-8".into()))?;
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        if rows.saturating_mul(cols) > 1 << 28 {
            return Err(TensorError::BadFormat("absurd matrix size".into()));
        }
        let mut data = vec![0.0f32; rows * cols];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        params.add(name, Mat::from_vec(rows, cols, data)?);
    }
    Ok(params)
}

/// Saves a parameter set to a file path.
///
/// # Errors
///
/// See [`save`].
pub fn save_file(params: &ParamSet, path: impl AsRef<std::path::Path>) -> Result<(), TensorError> {
    let f = std::fs::File::create(path)?;
    save(params, std::io::BufWriter::new(f))
}

/// Loads a parameter set from a file path.
///
/// # Errors
///
/// See [`load`].
pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<ParamSet, TensorError> {
    let f = std::fs::File::open(path)?;
    load(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{xavier, InitRng};

    #[test]
    fn round_trip() {
        let mut rng = InitRng::new(3);
        let mut p = ParamSet::new();
        p.add("layer0/w", xavier(3, 4, &mut rng));
        p.add("layer0/b", Mat::zeros(1, 4));
        p.add("head", xavier(4, 1, &mut rng));

        let mut buf = Vec::new();
        save(&p, &mut buf).unwrap();
        let q = load(buf.as_slice()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_wrong_magic() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(matches!(
            load(buf.as_slice()),
            Err(TensorError::BadFormat(_))
        ));
    }

    #[test]
    fn rejects_truncated() {
        let mut p = ParamSet::new();
        p.add("w", Mat::zeros(2, 2));
        let mut buf = Vec::new();
        save(&p, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_set_round_trips() {
        let p = ParamSet::new();
        let mut buf = Vec::new();
        save(&p, &mut buf).unwrap();
        let q = load(buf.as_slice()).unwrap();
        assert!(q.is_empty());
    }
}
