//! Tape-free backward primitives for packed-batch training.
//!
//! The training twin of [`crate::infer`]: free functions that compute
//! the hand-derived gradients of every op the GNNTrans forward pass
//! uses, writing into caller-provided [`Mat`]s backed by an
//! [`crate::infer::Arena`]. No tape nodes, no per-op allocation — a
//! whole mini-batch of K graphs backpropagates as one tall node matrix
//! with segment windows, one blocked GEMM per layer.
//!
//! # Gradient identities
//!
//! For `C = A·B` with upstream gradient `G`: `dA = G·Bᵀ` and
//! `dB = Aᵀ·G`, computed by the fused [`crate::kernels::gemm_nt`] /
//! [`crate::kernels::gemm_tn`] kernels without materializing a
//! transpose — exactly the kernels [`crate::Tape`] uses in
//! `Op::Matmul`'s backward, so the results are bit-identical to the
//! tape's gradients when accumulated in the same order.
//!
//! # Accumulation-order contract
//!
//! Bit parity with the tape depends on mirroring *where sums happen*:
//!
//! * `gemm` and `gemm_nt` compute each output element into a private
//!   accumulator and issue **one** `+=` per element, so calling them on
//!   a non-zero target is bitwise the same as computing a fresh product
//!   and element-adding it — the tape's `grad.axpy(1.0, &fresh)`.
//!   [`matmul_nt_acc`] therefore accumulates safely.
//! * `gemm_tn` applies rank-1 updates **term by term** into the target,
//!   which only reproduces a fresh product when the target starts at
//!   zero. Every `*_tn_*` entry point here zeroes its output window
//!   first; weight-gradient targets must be freshly zeroed matrices
//!   (each parameter is used once per step, so one write suffices).
//!
//! Row-window (`*_win_*`) and segment (`*_seg_*`) variants address a
//! contiguous row range of a tall packed matrix in place, mirroring the
//! forward-side ops of [`crate::infer`]: the blocked kernels produce
//! every output row with a position-independent accumulation order, so
//! a graph's gradients are bit-identical whether it is packed alone or
//! with neighbours.

use crate::kernels;
use crate::Mat;

/// `out += a * bᵀ` for `a` (`m x k`), `b` (`n x k`), `out` (`m x n`).
///
/// The matmul input-gradient `dA = G·Bᵀ` (and, via operand swap, the
/// projection input-gradient `dX = G·Wᵀ`). One `+=` per output element
/// — bitwise equal to adding a fresh product, so it may target a
/// gradient buffer that already holds earlier contributions.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matmul_nt_acc(a: &Mat, b: &Mat, out: &mut Mat) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt_acc inner dim");
    assert_eq!(out.shape(), (a.rows(), b.rows()), "matmul_nt_acc out shape");
    kernels::gemm_nt(
        a.rows(),
        a.cols(),
        b.rows(),
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `out += aᵀ * b` for `a` (`k x m`), `b` (`k x n`), `out` (`m x n`).
///
/// The matmul weight-gradient `dW = Xᵀ·G`. `gemm_tn` accumulates term
/// by term, so this is only bitwise-equal to a fresh product when
/// `out` starts zeroed — which every weight-gradient matrix does (one
/// parameter, one use, one write per step).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matmul_tn_acc(a: &Mat, b: &Mat, out: &mut Mat) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn_acc inner dim");
    assert_eq!(out.shape(), (a.cols(), b.cols()), "matmul_tn_acc out shape");
    kernels::gemm_tn(
        a.rows(),
        a.cols(),
        b.cols(),
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `out = a[row0..row0+rows]ᵀ * b`: the weight-gradient kernel on a row
/// window of a tall activation matrix (`b.rows()` must equal `rows`).
/// `out` is fully overwritten.
///
/// Used for the attention `dKᵀ = Q_sᵀ·dScores` scratch (window) and,
/// with `row0 = 0, rows = a.rows()`, any full-matrix `Xᵀ·G`.
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn matmul_tn_win_into(a: &Mat, row0: usize, rows: usize, b: &Mat, out: &mut Mat) {
    assert!(row0 + rows <= a.rows(), "matmul_tn_win_into a bounds");
    assert_eq!(b.rows(), rows, "matmul_tn_win_into inner dim");
    assert_eq!(out.shape(), (a.cols(), b.cols()), "matmul_tn_win_into out");
    let m = a.cols();
    let a_view = &a.as_slice()[row0 * m..(row0 + rows) * m];
    out.as_mut_slice().fill(0.0);
    kernels::gemm_tn(rows, m, b.cols(), a_view, b.as_slice(), out.as_mut_slice());
}

/// `out = a[row0..row0+rows] * b[row0..row0+rows]ᵀ` for two tall
/// matrices sharing the same segment window. `out`
/// (`rows x rows`) is fully overwritten.
///
/// The attention-probability gradient `dP_s = dHeadOut_s · V_sᵀ`.
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn matmul_nt_win_into(a: &Mat, b: &Mat, row0: usize, rows: usize, out: &mut Mat) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt_win_into inner dim");
    assert!(row0 + rows <= a.rows(), "matmul_nt_win_into a bounds");
    assert!(row0 + rows <= b.rows(), "matmul_nt_win_into b bounds");
    assert_eq!(out.shape(), (rows, rows), "matmul_nt_win_into out");
    let k = a.cols();
    let a_view = &a.as_slice()[row0 * k..(row0 + rows) * k];
    let b_view = &b.as_slice()[row0 * k..(row0 + rows) * k];
    out.as_mut_slice().fill(0.0);
    kernels::gemm_nt(rows, k, rows, a_view, b_view, out.as_mut_slice());
}

/// `out[out_row0..][..a.rows()] = a * bᵀ`: a small `a` (`m x k`) times
/// `bᵀ` (`b` stored `n x k`) written into a row window of a tall `out`.
/// The window is fully overwritten.
///
/// The attention query gradient `dQ_s = dScores · Kᵀᵀ` (with the `hd x
/// ns` transposed key recomputed per segment, exactly as the tape's
/// `matmul_nt(g, kt)` consumes it).
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn matmul_nt_seg_into(a: &Mat, b: &Mat, out: &mut Mat, out_row0: usize) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt_seg_into inner dim");
    assert_eq!(out.cols(), b.rows(), "matmul_nt_seg_into out width");
    assert!(out_row0 + a.rows() <= out.rows(), "matmul_nt_seg_into out bounds");
    let n = b.rows();
    let c_view = &mut out.as_mut_slice()[out_row0 * n..(out_row0 + a.rows()) * n];
    c_view.fill(0.0);
    kernels::gemm_nt(a.rows(), a.cols(), n, a.as_slice(), b.as_slice(), c_view);
}

/// `out[out_row0..][..a.cols()] = aᵀ * b[b_row0..][..a.rows()]`: a small
/// `a` (`k x m`) transposed against a row window of a tall `b`, written
/// into a row window of a tall `out`. The window is fully overwritten.
///
/// Two backward uses, both per segment `s`: the value gradient
/// `dV_s = P_sᵀ · dHeadOut_s` and the aggregation input-gradient
/// `A_sᵀ · dAgg_s` (eq. 1's backward — works for asymmetric
/// mean-aggregation adjacencies too).
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn matmul_tn_seg_into(a: &Mat, b: &Mat, b_row0: usize, out: &mut Mat, out_row0: usize) {
    let k = a.rows();
    assert!(b_row0 + k <= b.rows(), "matmul_tn_seg_into b bounds");
    assert_eq!(out.cols(), b.cols(), "matmul_tn_seg_into out width");
    assert!(out_row0 + a.cols() <= out.rows(), "matmul_tn_seg_into out bounds");
    let n = b.cols();
    let b_view = &b.as_slice()[b_row0 * n..(b_row0 + k) * n];
    let c_view = &mut out.as_mut_slice()[out_row0 * n..(out_row0 + a.cols()) * n];
    c_view.fill(0.0);
    kernels::gemm_tn(k, a.cols(), n, a.as_slice(), b_view, c_view);
}

/// Transposes a small `src` (`c x rows`) into a row window of a tall
/// `out` (`rows` rows of width `c` starting at `out_row0`) — the
/// backward of the per-segment `K_sᵀ` transpose, scattering `dKᵀ` back
/// into the tall `dK`. The window is fully overwritten.
///
/// # Panics
///
/// Panics on shape or bounds mismatch.
pub fn transpose_seg_into(src: &Mat, out: &mut Mat, out_row0: usize) {
    let rows = src.cols();
    let c = src.rows();
    assert_eq!(out.cols(), c, "transpose_seg_into out width");
    assert!(out_row0 + rows <= out.rows(), "transpose_seg_into out bounds");
    for j in 0..c {
        let s = src.row(j);
        for (i, &v) in s.iter().enumerate() {
            out.as_mut_slice()[(out_row0 + i) * c + j] = v;
        }
    }
}

/// Column sums of `g` into the `1 x cols` bias gradient `db`,
/// accumulating rows in ascending order exactly as the tape's
/// `AddBiasRows` backward does. `db` is fully overwritten.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn add_bias_backward(g: &Mat, db: &mut Mat) {
    assert_eq!(db.shape(), (1, g.cols()), "add_bias_backward db shape");
    db.as_mut_slice().fill(0.0);
    for r in 0..g.rows() {
        let row = g.row(r);
        for (c, &v) in row.iter().enumerate() {
            db.as_mut_slice()[c] += v;
        }
    }
}

/// Masks the upstream gradient `d` in place where the ReLU output `act`
/// is `<= 0`.
///
/// The tape masks on the ReLU *input* `x <= 0`; since the forward sets
/// `y = 0` exactly when `x < 0` and passes `x` through otherwise
/// (including `-0.0` and `NaN`), `y <= 0` selects the same elements —
/// so stashing post-activation outputs suffices for backward.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn relu_backward_inplace(d: &mut Mat, act: &Mat) {
    assert_eq!(d.shape(), act.shape(), "relu_backward shape mismatch");
    for (dv, &y) in d.as_mut_slice().iter_mut().zip(act.as_slice()) {
        if y <= 0.0 {
            *dv = 0.0;
        }
    }
}

/// Row-wise softmax backward in place: with output `y` and upstream
/// gradient `d`, each row becomes `y ∘ (d - <d, y>)` — the per-row dot
/// product accumulated left to right exactly as the tape's
/// `SoftmaxRows` backward.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn softmax_rows_backward_inplace(d: &mut Mat, y: &Mat) {
    assert_eq!(d.shape(), y.shape(), "softmax_backward shape mismatch");
    let cols = d.cols();
    for r in 0..d.rows() {
        let yr = y.row(r);
        let dr = &mut d.as_mut_slice()[r * cols..(r + 1) * cols];
        let dot: f32 = (0..cols).map(|c| dr[c] * yr[c]).sum();
        for (dv, &yv) in dr.iter_mut().zip(yr) {
            *dv = yv * (*dv - dot);
        }
    }
}

/// Layer-norm backward: accumulates
/// `dx += inv_sigma * (g - mean(g) - y * mean(g ∘ y))` per row into
/// `dx`, with the row statistics recomputed from the pre-norm input `x`
/// in the same order as the tape's `LayerNormRows` backward (`y` is
/// the stashed normalized output).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn layer_norm_rows_backward_acc(x: &Mat, y: &Mat, g: &Mat, eps: f32, dx: &mut Mat) {
    assert_eq!(x.shape(), g.shape(), "layer_norm_backward g shape");
    assert_eq!(x.shape(), y.shape(), "layer_norm_backward y shape");
    assert_eq!(x.shape(), dx.shape(), "layer_norm_backward dx shape");
    let n = x.cols() as f32;
    let cols = x.cols();
    for r in 0..x.rows() {
        let xr = x.row(r);
        let yr = y.row(r);
        let gr = g.row(r);
        let mean: f32 = xr.iter().sum::<f32>() / n;
        let var: f32 = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv_sigma = 1.0 / (var + eps).sqrt();
        let g_mean: f32 = gr.iter().sum::<f32>() / n;
        let gy_mean: f32 = (0..cols).map(|c| gr[c] * yr[c]).sum::<f32>() / n;
        let dxr = &mut dx.as_mut_slice()[r * cols..(r + 1) * cols];
        for c in 0..cols {
            let d = inv_sigma * (gr[c] - g_mean - yr[c] * gy_mean);
            dxr[c] += d;
        }
    }
}

/// Copies columns `col0..col0+dst.cols()` of `src` into `dst`,
/// overwriting it — the backward of a column concatenation, splitting
/// the upstream gradient.
///
/// # Panics
///
/// Panics on bounds mismatch.
pub fn slice_cols_into(src: &Mat, col0: usize, dst: &mut Mat) {
    assert_eq!(src.rows(), dst.rows(), "slice_cols_into row mismatch");
    assert!(col0 + dst.cols() <= src.cols(), "slice_cols_into bounds");
    let sc = src.cols();
    let dc = dst.cols();
    for r in 0..src.rows() {
        let s = &src.as_slice()[r * sc + col0..r * sc + col0 + dc];
        dst.as_mut_slice()[r * dc..(r + 1) * dc].copy_from_slice(s);
    }
}

/// Adds columns `col0..col0+dst.cols()` of `src` into `dst` — the
/// accumulating variant of [`slice_cols_into`] for gradient targets
/// that already hold earlier contributions.
///
/// # Panics
///
/// Panics on bounds mismatch.
pub fn slice_cols_acc(src: &Mat, col0: usize, dst: &mut Mat) {
    assert_eq!(src.rows(), dst.rows(), "slice_cols_acc row mismatch");
    assert!(col0 + dst.cols() <= src.cols(), "slice_cols_acc bounds");
    let sc = src.cols();
    let dc = dst.cols();
    for r in 0..src.rows() {
        let s = &src.as_slice()[r * sc + col0..r * sc + col0 + dc];
        let d = &mut dst.as_mut_slice()[r * dc..(r + 1) * dc];
        for (dv, &sv) in d.iter_mut().zip(s) {
            *dv += sv;
        }
    }
}

/// Backward of the gather-then-mean path pooling: scatters row `g_row`
/// of the pooled gradient `g`, scaled by `1 / indices.len()`, into the
/// node rows of `dx` selected by `indices` (in index order — the
/// tape's `GatherRows` backward order).
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn mean_rows_backward_acc(g: &Mat, g_row: usize, indices: &[usize], dx: &mut Mat) {
    assert!(!indices.is_empty(), "mean_rows_backward over zero rows");
    assert_eq!(g.cols(), dx.cols(), "mean_rows_backward width mismatch");
    let inv = 1.0 / indices.len() as f32;
    let cols = dx.cols();
    let grow = g.row(g_row);
    for &i in indices {
        let d = &mut dx.as_mut_slice()[i * cols..(i + 1) * cols];
        for (dv, &gv) in d.iter_mut().zip(grow) {
            *dv += gv * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    fn sample(rows: usize, cols: usize, seed: f32) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 * 0.61 + seed).sin()) * 0.9;
        }
        m
    }

    /// Tape gradients of `loss = mse(f(inputs), target)` for a one-op
    /// graph, used to pin each kernel against the autograd oracle.
    fn tape_matmul_grads(a: &Mat, b: &Mat, t: &Mat) -> (Mat, Mat, Mat) {
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let z = tape.matmul(av, bv);
        let loss = tape.mse_loss(z, t);
        tape.backward(loss);
        (
            tape.grad(av).clone(),
            tape.grad(bv).clone(),
            tape.grad(z).clone(),
        )
    }

    #[test]
    fn matmul_grads_match_tape_bitwise() {
        let a = sample(5, 7, 0.3);
        let b = sample(7, 4, 1.1);
        let t = sample(5, 4, 2.2);
        let (da_tape, db_tape, g) = tape_matmul_grads(&a, &b, &t);

        let mut da = Mat::zeros(5, 7);
        matmul_nt_acc(&g, &b, &mut da);
        assert_eq!(da, da_tape);

        let mut db = Mat::zeros(7, 4);
        matmul_tn_acc(&a, &g, &mut db);
        assert_eq!(db, db_tape);

        // Accumulating a second contribution equals fresh-then-add for
        // the nt kernel (one += per element).
        let mut acc = da_tape.clone();
        matmul_nt_acc(&g, &b, &mut acc);
        let mut twice = da_tape.clone();
        twice.axpy(1.0, &da_tape);
        assert_eq!(acc, twice);
    }

    #[test]
    fn window_kernels_match_full_kernels_on_copied_segments() {
        let tall_a = sample(12, 5, 0.7);
        let tall_b = sample(12, 5, 1.9);
        let (row0, rows) = (4usize, 3usize);
        let mut seg_a = Mat::zeros(rows, 5);
        let mut seg_b = Mat::zeros(rows, 5);
        for r in 0..rows {
            for c in 0..5 {
                seg_a.set(r, c, tall_a.get(row0 + r, c));
                seg_b.set(r, c, tall_b.get(row0 + r, c));
            }
        }

        // nt over a shared window == nt over the copied segments.
        let mut want = Mat::zeros(rows, rows);
        matmul_nt_acc(&seg_a, &seg_b, &mut want);
        let mut got = Mat::zeros(rows, rows);
        matmul_nt_win_into(&tall_a, &tall_b, row0, rows, &mut got);
        assert_eq!(got, want);

        // tn with a windowed left operand == tn over the copied segment.
        let small = sample(rows, 6, 3.0);
        let mut want_tn = Mat::zeros(5, 6);
        matmul_tn_acc(&seg_a, &small, &mut want_tn);
        let mut got_tn = Mat::zeros(5, 6);
        matmul_tn_win_into(&tall_a, row0, rows, &small, &mut got_tn);
        assert_eq!(got_tn, want_tn);

        // seg write targets: small · smallᵀ into a tall window.
        let sq = sample(rows, rows, 0.2);
        let wide = sample(5, rows, 4.4); // n x k with k = rows
        let mut want_seg = Mat::zeros(rows, 5);
        matmul_nt_acc(&sq, &wide, &mut want_seg);
        let mut tall_out = sample(12, 5, 9.9); // stale values must be cleared
        matmul_nt_seg_into(&sq, &wide, &mut tall_out, row0);
        for r in 0..rows {
            assert_eq!(tall_out.row(row0 + r), want_seg.row(r));
        }

        // smallᵀ · tall-window into a tall window.
        let mut want_tnseg = Mat::zeros(rows, 5);
        matmul_tn_acc(&sq, &seg_b, &mut want_tnseg);
        let mut tall_out2 = sample(12, 5, 7.7);
        matmul_tn_seg_into(&sq, &tall_b, row0, &mut tall_out2, row0);
        for r in 0..rows {
            assert_eq!(tall_out2.row(row0 + r), want_tnseg.row(r));
        }
    }

    #[test]
    fn transpose_seg_scatters_back() {
        let small = sample(4, 3, 0.5); // c x rows
        let mut tall = sample(10, 4, 8.8);
        transpose_seg_into(&small, &mut tall, 6);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(tall.get(6 + i, j), small.get(j, i));
            }
        }
    }

    #[test]
    fn bias_relu_softmax_backwards_match_tape() {
        let x = sample(5, 6, 0.4);
        let bias = sample(1, 6, 1.3);
        let t = sample(5, 6, 2.6);

        // z = softmax(relu(x + bias)); loss = mse(z, t).
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let bv = tape.constant(bias.clone());
        let biased = tape.add_bias_rows(xv, bv);
        let relued = tape.relu(biased);
        let soft = tape.softmax_rows(relued);
        let loss = tape.mse_loss(soft, &t);
        tape.backward(loss);

        // Upstream gradient at the softmax output, straight off the tape.
        let g_soft = tape.grad(soft).clone();
        let y_soft = tape.value(soft).clone();
        let y_relu = tape.value(relued).clone();

        let mut d = g_soft.clone();
        softmax_rows_backward_inplace(&mut d, &y_soft);
        assert_eq!(&d, tape.grad(relued));

        relu_backward_inplace(&mut d, &y_relu);
        assert_eq!(&d, tape.grad(biased));

        let mut db = Mat::zeros(1, 6);
        add_bias_backward(&d, &mut db);
        assert_eq!(&db, tape.grad(bv));
        assert_eq!(&d, tape.grad(xv));
    }

    #[test]
    fn layer_norm_backward_matches_tape() {
        let x = sample(4, 8, 0.9);
        let t = sample(4, 8, 3.1);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = tape.layer_norm_rows(xv, 1e-5);
        let loss = tape.mse_loss(y, &t);
        tape.backward(loss);

        let mut dx = Mat::zeros(4, 8);
        layer_norm_rows_backward_acc(&x, tape.value(y), tape.grad(y), 1e-5, &mut dx);
        assert_eq!(&dx, tape.grad(xv));
    }

    #[test]
    fn layer_norm_backward_matches_finite_differences() {
        // d/dx of <G, layer_norm(x)> by central differences.
        let x = sample(3, 5, 1.7);
        let g = sample(3, 5, 0.2);
        let eps = 1e-5f32;
        let mut y = Mat::zeros(3, 5);
        crate::infer::layer_norm_rows_into(&x, eps, &mut y);
        let mut dx = Mat::zeros(3, 5);
        layer_norm_rows_backward_acc(&x, &y, &g, eps, &mut dx);

        let objective = |x: &Mat| -> f64 {
            let mut y = Mat::zeros(3, 5);
            crate::infer::layer_norm_rows_into(x, eps, &mut y);
            y.as_slice()
                .iter()
                .zip(g.as_slice())
                .map(|(&yv, &gv)| yv as f64 * gv as f64)
                .sum()
        };
        let h = 1e-3f32;
        for i in [0usize, 4, 7, 12] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let numeric = (objective(&xp) - objective(&xm)) / (2.0 * h as f64);
            let analytic = dx.as_slice()[i] as f64;
            assert!(
                (analytic - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "dx[{i}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn softmax_backward_matches_finite_differences() {
        let x = sample(2, 6, 0.8);
        let g = sample(2, 6, 2.9);
        let mut y = x.clone();
        crate::infer::softmax_rows_inplace(&mut y);
        let mut d = g.clone();
        softmax_rows_backward_inplace(&mut d, &y);

        let objective = |x: &Mat| -> f64 {
            let mut y = x.clone();
            crate::infer::softmax_rows_inplace(&mut y);
            y.as_slice()
                .iter()
                .zip(g.as_slice())
                .map(|(&yv, &gv)| yv as f64 * gv as f64)
                .sum()
        };
        let h = 1e-3f32;
        for i in [0usize, 3, 8, 11] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let numeric = (objective(&xp) - objective(&xm)) / (2.0 * h as f64);
            let analytic = d.as_slice()[i] as f64;
            assert!(
                (analytic - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "d[{i}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn pooling_backward_matches_tape() {
        // mean over gathered rows, stacked — the eq. (4) pooling module.
        let x = sample(7, 4, 0.6);
        let paths = [vec![2usize, 0, 5], vec![1, 6]];
        let t = sample(2, 4, 1.5);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let rows: Vec<_> = paths
            .iter()
            .map(|p| {
                let gth = tape.gather_rows(xv, p);
                tape.mean_rows(gth)
            })
            .collect();
        let stacked = tape.stack_rows(&rows);
        let loss = tape.mse_loss(stacked, &t);
        tape.backward(loss);

        let g = tape.grad(stacked).clone();
        let mut dx = Mat::zeros(7, 4);
        // Reverse path order mirrors the tape's reverse node walk.
        for (j, p) in paths.iter().enumerate().rev() {
            mean_rows_backward_acc(&g, j, p, &mut dx);
        }
        assert_eq!(&dx, tape.grad(xv));
    }

    #[test]
    fn col_slicing_matches_concat_backward() {
        let a = sample(4, 3, 0.1);
        let b = sample(4, 2, 1.8);
        let t = sample(4, 5, 2.4);
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.constant(b.clone());
        let cat = tape.concat_cols(av, bv);
        let loss = tape.mse_loss(cat, &t);
        tape.backward(loss);

        let g = tape.grad(cat).clone();
        let mut da = Mat::zeros(4, 3);
        slice_cols_into(&g, 0, &mut da);
        assert_eq!(&da, tape.grad(av));
        let mut db = Mat::zeros(4, 2);
        slice_cols_into(&g, 3, &mut db);
        assert_eq!(&db, tape.grad(bv));

        // The accumulating variant adds instead of overwriting.
        let mut acc = da.clone();
        slice_cols_acc(&g, 0, &mut acc);
        let mut twice = da.clone();
        twice.axpy(1.0, &da);
        assert_eq!(acc, twice);
    }
}
