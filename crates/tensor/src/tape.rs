//! The gradient tape: builds a computation graph eagerly and replays it in
//! reverse to accumulate gradients.
//!
//! Every method on [`Tape`] computes its result immediately (define-by-run,
//! like PyTorch) and records the operation. [`Tape::backward`] seeds the
//! loss gradient with 1 and walks the tape backwards. Parameters are leaf
//! nodes tagged with the caller's parameter id so [`Tape::param_grads`]
//! can hand the optimizer a `(param_id, gradient)` list.

use crate::Mat;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Matmul(usize, usize),
    Add(usize, usize),
    AddBiasRows(usize, usize),
    AddBiasCols(usize, usize),
    Hadamard(usize, usize),
    Scale(usize, f32),
    Relu(usize),
    LeakyRelu(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    SoftmaxRows(usize),
    Transpose(usize),
    ConcatCols(usize, usize),
    StackRows(Vec<usize>),
    GatherRows(usize, Vec<usize>),
    MeanRows(usize),
    LayerNormRows(usize, f32),
    MseLoss(usize, Mat),
}

#[derive(Debug, Clone)]
struct Node {
    value: Mat,
    grad: Mat,
    op: Op,
    param: Option<usize>,
}

/// A reverse-mode gradient tape over [`Mat`] values.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    fn push(&mut self, value: Mat, op: Op, param: Option<usize>) -> Var {
        let grad = Mat::zeros(value.rows(), value.cols());
        self.nodes.push(Node {
            value,
            grad,
            op,
            param,
        });
        Var(self.nodes.len() - 1)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a constant (gradients are tracked but never harvested).
    pub fn constant(&mut self, value: Mat) -> Var {
        self.push(value, Op::Leaf, None)
    }

    /// Registers a trainable parameter tagged with `param_id`.
    pub fn param(&mut self, param_id: usize, value: Mat) -> Var {
        self.push(value, Op::Leaf, Some(param_id))
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Mat {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node (zeros before [`Tape::backward`]).
    pub fn grad(&self, v: Var) -> &Mat {
        &self.nodes[v.0].grad
    }

    /// Matrix product `a * b`.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::Matmul(a.0, b.0), None)
    }

    /// Element-wise sum (same shapes).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(v, Op::Add(a.0, b.0), None)
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics when `bias` is not `1 x a.cols`.
    pub fn add_bias_rows(&mut self, a: Var, bias: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(bv.cols(), av.cols(), "bias width mismatch");
        let mut out = av.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out.set(r, c, out.get(r, c) + bv.get(0, c));
            }
        }
        self.push(out, Op::AddBiasRows(a.0, bias.0), None)
    }

    /// Adds an `rows x 1` column to every column of `a`.
    ///
    /// # Panics
    ///
    /// Panics when `col` is not `a.rows x 1`.
    pub fn add_bias_cols(&mut self, a: Var, col: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let cv = &self.nodes[col.0].value;
        assert_eq!(cv.cols(), 1, "column bias must be a column vector");
        assert_eq!(cv.rows(), av.rows(), "column bias height mismatch");
        let mut out = av.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out.set(r, c, out.get(r, c) + cv.get(r, 0));
            }
        }
        self.push(out, Op::AddBiasCols(a.0, col.0), None)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(v, Op::Hadamard(a.0, b.0), None)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        self.push(v, Op::Scale(a.0, s), None)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in v.as_mut_slice() {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        self.push(v, Op::Relu(a.0), None)
    }

    /// Leaky rectified linear unit with negative-side `slope`.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in v.as_mut_slice() {
            if *x < 0.0 {
                *x *= slope;
            }
        }
        self.push(v, Op::LeakyRelu(a.0, slope), None)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in v.as_mut_slice() {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        self.push(v, Op::Sigmoid(a.0), None)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut v = self.nodes[a.0].value.clone();
        for x in v.as_mut_slice() {
            *x = x.tanh();
        }
        self.push(v, Op::Tanh(a.0), None)
    }

    /// Row-wise softmax (each row sums to 1) with max-subtraction for
    /// numerical stability.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let mut v = av.clone();
        for r in 0..v.rows() {
            let row_max = av.row(r).iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut sum = 0.0;
            for c in 0..v.cols() {
                let e = (av.get(r, c) - row_max).exp();
                v.set(r, c, e);
                sum += e;
            }
            for c in 0..v.cols() {
                v.set(r, c, v.get(r, c) / sum);
            }
        }
        self.push(v, Op::SoftmaxRows(a.0), None)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a.0), None)
    }

    /// Horizontal concatenation `[a | b]` (same row counts).
    ///
    /// # Panics
    ///
    /// Panics when the row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let mut v = Mat::zeros(av.rows(), av.cols() + bv.cols());
        for r in 0..av.rows() {
            for c in 0..av.cols() {
                v.set(r, c, av.get(r, c));
            }
            for c in 0..bv.cols() {
                v.set(r, av.cols() + c, bv.get(r, c));
            }
        }
        self.push(v, Op::ConcatCols(a.0, b.0), None)
    }

    /// Vertical stack of several nodes (same column counts).
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or the column counts differ.
    pub fn stack_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "stack_rows needs at least one part");
        let cols = self.nodes[parts[0].0].value.cols();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.rows()).sum();
        let mut v = Mat::zeros(total, cols);
        let mut r0 = 0;
        for p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.cols(), cols, "stack_rows column mismatch");
            for r in 0..pv.rows() {
                for c in 0..cols {
                    v.set(r0 + r, c, pv.get(r, c));
                }
            }
            r0 += pv.rows();
        }
        self.push(v, Op::StackRows(parts.iter().map(|p| p.0).collect()), None)
    }

    /// Gathers rows of `a` in the given order (rows may repeat).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let av = &self.nodes[a.0].value;
        let mut v = Mat::zeros(indices.len(), av.cols());
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < av.rows(), "gather_rows index {i} out of range");
            for c in 0..av.cols() {
                v.set(r, c, av.get(i, c));
            }
        }
        self.push(v, Op::GatherRows(a.0, indices.to_vec()), None)
    }

    /// Mean over all rows: `n x c -> 1 x c`.
    ///
    /// # Panics
    ///
    /// Panics when `a` has no rows.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        assert!(av.rows() > 0, "mean over zero rows");
        let mut v = Mat::zeros(1, av.cols());
        for r in 0..av.rows() {
            for c in 0..av.cols() {
                v.set(0, c, v.get(0, c) + av.get(r, c));
            }
        }
        let inv = 1.0 / av.rows() as f32;
        for c in 0..av.cols() {
            v.set(0, c, v.get(0, c) * inv);
        }
        self.push(v, Op::MeanRows(a.0), None)
    }

    /// Per-row layer normalization (zero mean, unit variance, no learnable
    /// affine — compose with [`Tape::hadamard`] / [`Tape::add_bias_rows`]
    /// for gain and bias).
    pub fn layer_norm_rows(&mut self, a: Var, eps: f32) -> Var {
        let av = &self.nodes[a.0].value;
        let mut v = av.clone();
        let n = av.cols() as f32;
        for r in 0..av.rows() {
            let mean: f32 = av.row(r).iter().sum::<f32>() / n;
            let var: f32 = av.row(r).iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
            let inv_sigma = 1.0 / (var + eps).sqrt();
            for c in 0..av.cols() {
                v.set(r, c, (av.get(r, c) - mean) * inv_sigma);
            }
        }
        self.push(v, Op::LayerNormRows(a.0, eps), None)
    }

    /// Mean-squared-error loss against a constant target; returns a `1x1`
    /// node.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Mat) -> Var {
        let pv = &self.nodes[pred.0].value;
        assert_eq!(pv.shape(), target.shape(), "mse target shape mismatch");
        let n = (pv.rows() * pv.cols()) as f32;
        let mut acc = 0.0f32;
        for (p, t) in pv.as_slice().iter().zip(target.as_slice()) {
            let d = p - t;
            acc += d * d;
        }
        let v = Mat::from_vec(1, 1, vec![acc / n]).expect("1x1");
        self.push(v, Op::MseLoss(pred.0, target.clone()), None)
    }

    /// Runs reverse-mode accumulation from `loss` (seeded with gradient 1).
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a `1x1` node.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward must start from a scalar node"
        );
        for n in &mut self.nodes {
            let (r, c) = n.grad.shape();
            n.grad = Mat::zeros(r, c);
        }
        self.nodes[loss.0].grad.set(0, 0, 1.0);

        for i in (0..self.nodes.len()).rev() {
            let g = self.nodes[i].grad.clone();
            if g.max_abs() == 0.0 {
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Matmul(a, b) => {
                    // Fused transpose kernels: dA = G * Bᵀ, dB = Aᵀ * G,
                    // with no transposed temporaries materialized.
                    let da = g.matmul_nt(&self.nodes[b].value);
                    let db = self.nodes[a].value.matmul_tn(&g);
                    self.nodes[a].grad.axpy(1.0, &da);
                    self.nodes[b].grad.axpy(1.0, &db);
                }
                Op::Add(a, b) => {
                    self.nodes[a].grad.axpy(1.0, &g);
                    self.nodes[b].grad.axpy(1.0, &g);
                }
                Op::AddBiasRows(a, bias) => {
                    self.nodes[a].grad.axpy(1.0, &g);
                    let mut db = Mat::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            db.set(0, c, db.get(0, c) + g.get(r, c));
                        }
                    }
                    self.nodes[bias].grad.axpy(1.0, &db);
                }
                Op::AddBiasCols(a, col) => {
                    self.nodes[a].grad.axpy(1.0, &g);
                    let mut dc = Mat::zeros(g.rows(), 1);
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            dc.set(r, 0, dc.get(r, 0) + g.get(r, c));
                        }
                    }
                    self.nodes[col].grad.axpy(1.0, &dc);
                }
                Op::Hadamard(a, b) => {
                    let da = g.hadamard(&self.nodes[b].value);
                    let db = g.hadamard(&self.nodes[a].value);
                    self.nodes[a].grad.axpy(1.0, &da);
                    self.nodes[b].grad.axpy(1.0, &db);
                }
                Op::Scale(a, s) => {
                    self.nodes[a].grad.axpy(s, &g);
                }
                Op::Relu(a) => {
                    let mut da = g.clone();
                    for (d, x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a].value.as_slice())
                    {
                        if *x <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::LeakyRelu(a, slope) => {
                    let mut da = g.clone();
                    for (d, x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a].value.as_slice())
                    {
                        if *x <= 0.0 {
                            *d *= slope;
                        }
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::Sigmoid(a) => {
                    let y = self.nodes[i].value.clone();
                    let mut da = g.clone();
                    for (d, y) in da.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *d *= y * (1.0 - y);
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::Tanh(a) => {
                    let y = self.nodes[i].value.clone();
                    let mut da = g.clone();
                    for (d, y) in da.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *d *= 1.0 - y * y;
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::SoftmaxRows(a) => {
                    let y = self.nodes[i].value.clone();
                    let mut da = Mat::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|c| g.get(r, c) * y.get(r, c)).sum();
                        for c in 0..y.cols() {
                            da.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::Transpose(a) => {
                    let da = g.transpose();
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.nodes[a].value.cols();
                    let bc = self.nodes[b].value.cols();
                    let mut da = Mat::zeros(g.rows(), ac);
                    let mut db = Mat::zeros(g.rows(), bc);
                    for r in 0..g.rows() {
                        for c in 0..ac {
                            da.set(r, c, g.get(r, c));
                        }
                        for c in 0..bc {
                            db.set(r, c, g.get(r, ac + c));
                        }
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                    self.nodes[b].grad.axpy(1.0, &db);
                }
                Op::StackRows(parts) => {
                    let mut r0 = 0;
                    for p in parts {
                        let rows = self.nodes[p].value.rows();
                        let cols = self.nodes[p].value.cols();
                        let mut dp = Mat::zeros(rows, cols);
                        for r in 0..rows {
                            for c in 0..cols {
                                dp.set(r, c, g.get(r0 + r, c));
                            }
                        }
                        self.nodes[p].grad.axpy(1.0, &dp);
                        r0 += rows;
                    }
                }
                Op::GatherRows(a, indices) => {
                    let cols = self.nodes[a].value.cols();
                    let rows = self.nodes[a].value.rows();
                    let mut da = Mat::zeros(rows, cols);
                    for (r, &idx) in indices.iter().enumerate() {
                        for c in 0..cols {
                            da.set(idx, c, da.get(idx, c) + g.get(r, c));
                        }
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::MeanRows(a) => {
                    let rows = self.nodes[a].value.rows();
                    let cols = self.nodes[a].value.cols();
                    let inv = 1.0 / rows as f32;
                    let mut da = Mat::zeros(rows, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            da.set(r, c, g.get(0, c) * inv);
                        }
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::LayerNormRows(a, eps) => {
                    let x = self.nodes[a].value.clone();
                    let y = self.nodes[i].value.clone();
                    let n = x.cols() as f32;
                    let mut da = Mat::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        let mean: f32 = x.row(r).iter().sum::<f32>() / n;
                        let var: f32 =
                            x.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
                        let inv_sigma = 1.0 / (var + eps).sqrt();
                        let g_mean: f32 = g.row(r).iter().sum::<f32>() / n;
                        let gy_mean: f32 =
                            (0..x.cols()).map(|c| g.get(r, c) * y.get(r, c)).sum::<f32>() / n;
                        for c in 0..x.cols() {
                            let d = inv_sigma * (g.get(r, c) - g_mean - y.get(r, c) * gy_mean);
                            da.set(r, c, d);
                        }
                    }
                    self.nodes[a].grad.axpy(1.0, &da);
                }
                Op::MseLoss(p, target) => {
                    let pv = self.nodes[p].value.clone();
                    let n = (pv.rows() * pv.cols()) as f32;
                    let scale = 2.0 / n * g.get(0, 0);
                    let mut dp = Mat::zeros(pv.rows(), pv.cols());
                    for (i2, (pe, te)) in
                        pv.as_slice().iter().zip(target.as_slice()).enumerate()
                    {
                        dp.as_mut_slice()[i2] = scale * (pe - te);
                    }
                    self.nodes[p].grad.axpy(1.0, &dp);
                }
            }
        }
    }

    /// Gradients of every parameter node, as `(param_id, gradient)` pairs.
    /// Repeated registrations of the same id accumulate.
    pub fn param_grads(&self) -> Vec<(usize, Mat)> {
        let mut out: Vec<(usize, Mat)> = Vec::new();
        for node in &self.nodes {
            if let Some(pid) = node.param {
                if let Some(existing) = out.iter_mut().find(|(id, _)| *id == pid) {
                    existing.1.axpy(1.0, &node.grad);
                } else {
                    out.push((pid, node.grad.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d(loss)/d(input[k]) for a scalar-valued builder.
    fn grad_check<F>(input: Mat, build: F)
    where
        F: Fn(&mut Tape, Var) -> Var,
    {
        let mut tape = Tape::new();
        let x = tape.param(0, input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).clone();

        let h = 1e-2f32;
        for k in 0..input.as_slice().len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[k] += h;
            let mut minus = input.clone();
            minus.as_mut_slice()[k] -= h;
            let eval = |m: Mat| {
                let mut t = Tape::new();
                let x = t.constant(m);
                let l = build(&mut t, x);
                t.value(l).get(0, 0)
            };
            let numeric = (eval(plus) - eval(minus)) / (2.0 * h);
            let a = analytic.as_slice()[k];
            let tol = 2e-2 * (1.0 + a.abs().max(numeric.abs()));
            assert!(
                (a - numeric).abs() < tol,
                "element {k}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn sample(rows: usize, cols: usize, seed: f32) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 * 0.37 + seed).sin()) * 0.8;
        }
        m
    }

    #[test]
    fn grad_matmul() {
        let w = sample(3, 2, 1.0);
        grad_check(sample(2, 3, 0.0), move |t, x| {
            let w = t.constant(w.clone());
            let y = t.matmul(x, w);
            let target = Mat::zeros(2, 2);
            t.mse_loss(y, &target)
        });
    }

    #[test]
    fn grad_add_and_scale() {
        let b = sample(2, 2, 5.0);
        grad_check(sample(2, 2, 0.3), move |t, x| {
            let b = t.constant(b.clone());
            let s = t.add(x, b);
            let s = t.scale(s, 1.7);
            t.mse_loss(s, &Mat::zeros(2, 2))
        });
    }

    #[test]
    fn grad_bias_rows_and_cols() {
        grad_check(Mat::row_vector(vec![0.1, -0.4, 0.7]), |t, bias| {
            let base = t.constant(sample(3, 3, 2.0));
            let y = t.add_bias_rows(base, bias);
            t.mse_loss(y, &Mat::zeros(3, 3))
        });
        grad_check(sample(3, 1, 0.9), |t, col| {
            let base = t.constant(sample(3, 4, 2.5));
            let y = t.add_bias_cols(base, col);
            t.mse_loss(y, &Mat::zeros(3, 4))
        });
    }

    #[test]
    fn grad_hadamard() {
        let other = sample(2, 3, 7.0);
        grad_check(sample(2, 3, 1.1), move |t, x| {
            let o = t.constant(other.clone());
            let y = t.hadamard(x, o);
            t.mse_loss(y, &Mat::zeros(2, 3))
        });
    }

    #[test]
    fn grad_activations() {
        // Offsets keep values away from the ReLU kink where the numeric
        // derivative is ill-defined.
        grad_check(sample(2, 3, 0.6), |t, x| {
            let y = t.relu(x);
            t.mse_loss(y, &Mat::full(2, 3, 0.2))
        });
        grad_check(sample(2, 3, 0.6), |t, x| {
            let y = t.leaky_relu(x, 0.1);
            t.mse_loss(y, &Mat::full(2, 3, 0.2))
        });
        grad_check(sample(2, 3, 0.2), |t, x| {
            let y = t.sigmoid(x);
            t.mse_loss(y, &Mat::zeros(2, 3))
        });
        grad_check(sample(2, 3, 0.2), |t, x| {
            let y = t.tanh(x);
            t.mse_loss(y, &Mat::zeros(2, 3))
        });
    }

    #[test]
    fn grad_softmax() {
        grad_check(sample(3, 4, 0.4), |t, x| {
            let y = t.softmax_rows(x);
            let target = Mat::full(3, 4, 0.25);
            t.mse_loss(y, &target)
        });
    }

    #[test]
    fn grad_transpose_concat_stack_gather_mean() {
        grad_check(sample(2, 3, 1.3), |t, x| {
            let y = t.transpose(x);
            t.mse_loss(y, &Mat::zeros(3, 2))
        });
        grad_check(sample(2, 2, 0.8), |t, x| {
            let o = t.constant(sample(2, 3, 9.0));
            let y = t.concat_cols(x, o);
            t.mse_loss(y, &Mat::zeros(2, 5))
        });
        grad_check(sample(2, 3, 0.8), |t, x| {
            let o = t.constant(sample(1, 3, 9.0));
            let y = t.stack_rows(&[x, o, x]);
            t.mse_loss(y, &Mat::zeros(5, 3))
        });
        grad_check(sample(4, 2, 0.5), |t, x| {
            let y = t.gather_rows(x, &[3, 0, 0, 2]);
            t.mse_loss(y, &Mat::zeros(4, 2))
        });
        grad_check(sample(4, 3, 0.5), |t, x| {
            let y = t.mean_rows(x);
            t.mse_loss(y, &Mat::zeros(1, 3))
        });
    }

    #[test]
    fn grad_layer_norm() {
        grad_check(sample(3, 5, 0.9), |t, x| {
            let y = t.layer_norm_rows(x, 1e-5);
            let target = Mat::full(3, 5, 0.1);
            t.mse_loss(y, &target)
        });
    }

    #[test]
    fn grad_attention_block() {
        // A miniature attention head end to end: softmax(QK^T) V.
        let wq = sample(3, 3, 11.0);
        let wk = sample(3, 3, 12.0);
        let wv = sample(3, 3, 13.0);
        grad_check(sample(4, 3, 0.25), move |t, x| {
            let wq = t.constant(wq.clone());
            let wk = t.constant(wk.clone());
            let wv = t.constant(wv.clone());
            let q = t.matmul(x, wq);
            let k = t.matmul(x, wk);
            let v = t.matmul(x, wv);
            let kt = t.transpose(k);
            let scores = t.matmul(q, kt);
            let scores = t.scale(scores, 1.0 / (3.0f32).sqrt());
            let attn = t.softmax_rows(scores);
            let out = t.matmul(attn, v);
            t.mse_loss(out, &Mat::zeros(4, 3))
        });
    }

    #[test]
    fn shared_param_grads_accumulate() {
        // loss = mse(x + x) => d/dx = 2 * 2 * (2x)/N ... just check the two
        // registrations of the same pid sum.
        let mut tape = Tape::new();
        let x1 = tape.param(7, Mat::full(1, 1, 1.0));
        let x2 = tape.param(7, Mat::full(1, 1, 1.0));
        let s = tape.add(x1, x2);
        let loss = tape.mse_loss(s, &Mat::zeros(1, 1));
        tape.backward(loss);
        let grads = tape.param_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, 7);
        // d loss/d s = 2*s = 4; each registration sees 4; sum = 8.
        assert!((grads[0].1.get(0, 0) - 8.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.constant(Mat::zeros(2, 2));
        tape.backward(x);
    }

    #[test]
    fn values_match_eager_eval() {
        let mut tape = Tape::new();
        let a = tape.constant(Mat::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
        let b = tape.constant(Mat::from_vec(2, 1, vec![3.0, 4.0]).unwrap());
        let c = tape.matmul(a, b);
        assert_eq!(tape.value(c).get(0, 0), 11.0);
        assert_eq!(tape.len(), 3);
        assert!(!tape.is_empty());
    }
}
