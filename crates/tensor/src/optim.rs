//! Parameter storage and first-order optimizers.

use crate::Mat;

/// A named, indexable set of trainable parameter matrices.
///
/// Models register their weights here once; each training step re-inserts
/// them into a fresh [`crate::Tape`] via [`crate::Tape::param`] using the
/// index returned by [`ParamSet::add`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamSet {
    names: Vec<String>,
    mats: Vec<Mat>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Registers a parameter, returning its index.
    pub fn add(&mut self, name: impl Into<String>, value: Mat) -> usize {
        self.names.push(name.into());
        self.mats.push(value);
        self.mats.len() - 1
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Parameter value by index.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn get(&self, idx: usize) -> &Mat {
        &self.mats[idx]
    }

    /// Mutable parameter value by index.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn get_mut(&mut self, idx: usize) -> &mut Mat {
        &mut self.mats[idx]
    }

    /// Parameter name by index.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Iterates over `(name, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Mat)> {
        self.names.iter().map(|s| s.as_str()).zip(self.mats.iter())
    }

    /// Total number of scalar weights.
    pub fn scalar_count(&self) -> usize {
        self.mats.iter().map(|m| m.rows() * m.cols()).sum()
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one descent step for each `(param_id, grad)` pair.
    ///
    /// # Panics
    ///
    /// Panics when a gradient's shape differs from its parameter.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[(usize, Mat)]) {
        for (pid, g) in grads {
            params.get_mut(*pid).axpy(-self.lr, g);
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay; 0 disables.
    pub weight_decay: f32,
    t: i32,
    m: Vec<Option<Mat>>,
    v: Vec<Option<Mat>>,
}

impl Adam {
    /// Creates Adam with the canonical `beta1=0.9, beta2=0.999, eps=1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables decoupled weight decay (AdamW): parameters shrink by
    /// `lr * decay` per step before the adaptive update.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }

    /// Applies one Adam step for each `(param_id, grad)` pair.
    ///
    /// # Panics
    ///
    /// Panics when a gradient's shape differs from its parameter.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[(usize, Mat)]) {
        self.t += 1;
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (pid, g) in grads {
            let p = params.get_mut(*pid);
            let m = self.m[*pid].get_or_insert_with(|| Mat::zeros(p.rows(), p.cols()));
            let v = self.v[*pid].get_or_insert_with(|| Mat::zeros(p.rows(), p.cols()));
            assert_eq!(p.shape(), g.shape(), "gradient shape mismatch");
            if self.weight_decay != 0.0 {
                let shrink = 1.0 - self.lr * self.weight_decay;
                for w in p.as_mut_slice() {
                    *w *= shrink;
                }
            }
            for i in 0..p.as_slice().len() {
                let gi = g.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    fn quadratic_step<O: FnMut(&mut ParamSet, &[(usize, Mat)])>(
        params: &mut ParamSet,
        w: usize,
        mut apply: O,
    ) -> f32 {
        // loss = (w - 3)^2, via the tape.
        let mut tape = Tape::new();
        let wv = tape.param(w, params.get(w).clone());
        let target = Mat::full(1, 1, 3.0);
        let loss = tape.mse_loss(wv, &target);
        tape.backward(loss);
        let l = tape.value(loss).get(0, 0);
        apply(params, &tape.param_grads());
        l
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.add("w", Mat::zeros(1, 1));
        let mut opt = Sgd::new(0.2);
        for _ in 0..100 {
            quadratic_step(&mut params, w, |p, g| opt.step(p, g));
        }
        assert!((params.get(w).get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.add("w", Mat::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            last = quadratic_step(&mut params, w, |p, g| opt.step(p, g));
        }
        assert!(last < 1e-4, "final loss {last}");
        assert!((params.get(w).get(0, 0) - 3.0).abs() < 0.05);
    }

    #[test]
    fn paramset_bookkeeping() {
        let mut p = ParamSet::new();
        assert!(p.is_empty());
        let a = p.add("a", Mat::zeros(2, 3));
        let b = p.add("b", Mat::zeros(1, 4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(a), "a");
        assert_eq!(p.name(b), "b");
        assert_eq!(p.scalar_count(), 10);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn weight_decay_shrinks_unregularized_optimum() {
        // With strong decay the fitted weight settles below the target.
        let fit = |decay: f32| {
            let mut params = ParamSet::new();
            let w = params.add("w", Mat::zeros(1, 1));
            let mut opt = Adam::new(0.05).with_weight_decay(decay);
            for _ in 0..500 {
                quadratic_step(&mut params, w, |p, g| opt.step(p, g));
            }
            params.get(w).get(0, 0)
        };
        let plain = fit(0.0);
        let decayed = fit(0.5);
        assert!((plain - 3.0).abs() < 0.05);
        assert!(decayed < plain - 0.05, "decay must pull weights down: {decayed} vs {plain}");
    }

    #[test]
    fn adam_handles_sparse_param_usage() {
        // Only one of two params receives gradients; state must not mix up.
        let mut params = ParamSet::new();
        let _unused = params.add("unused", Mat::full(1, 1, 5.0));
        let w = params.add("w", Mat::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            quadratic_step(&mut params, w, |p, g| opt.step(p, g));
        }
        assert!((params.get(w).get(0, 0) - 3.0).abs() < 0.05);
        assert_eq!(params.get(0).get(0, 0), 5.0);
    }
}
