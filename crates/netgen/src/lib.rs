//! Synthetic parasitic networks and benchmark designs.
//!
//! The paper trains and evaluates on Opencore designs extracted with
//! StarRC on TSMC16 — none of which can ship with an open reproduction.
//! This crate generates the statistical equivalent:
//!
//! * [`tech`] — a 16 nm-flavoured technology profile (per-segment R/C
//!   ranges, pin caps, coupling caps);
//! * [`nets`] — seeded generation of tree-like and non-tree RC nets with
//!   realistic branching, loop chords and coupling;
//! * [`designs`] — the TABLE II roster (PCI_BRIDGE … LEON3MP for
//!   training, WB_DMA … OPENGFX for test) with per-design net counts,
//!   non-tree fractions and a scale knob so laptop runs finish;
//! * [`dag`] — random gate-level DAGs and exact path counting for the
//!   Fig. 1/Fig. 2(a) statistics (netlist paths explode combinatorially,
//!   wire paths do not);
//! * [`special`] — balanced clock H-trees and neighbor-coupled buses for
//!   stress scenarios beyond random routing trees.
//!
//! All generation is deterministic from explicit `u64` seeds.
//!
//! # Examples
//!
//! ```
//! use netgen::nets::{NetConfig, NetGenerator};
//!
//! let mut g = NetGenerator::new(7, NetConfig::default());
//! let net = g.nontree_net("n0");
//! assert!(!net.is_tree());
//! assert!(net.paths().len() >= 1);
//! ```

pub mod dag;
pub mod designs;
pub mod nets;
pub mod special;
pub mod tech;

pub use designs::{generate_design, paper_roster, Design, DesignSpec};
pub use nets::{NetConfig, NetGenerator};
pub use special::{bus, clock_htree, Bus};
pub use tech::TechProfile;
