//! Seeded generation of tree-like and non-tree RC nets.
//!
//! Topologies are grown like router output: a trunk is extended segment by
//! segment with a tunable bias between chaining (long straight routes) and
//! branching (T-junctions); a random subset of leaves become sink pins.
//! Non-tree nets add loop-closing chords, the structure the paper singles
//! out as the hard case for prior estimators.

use crate::tech::TechProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcnet::{Farads, NodeId, Ohms, RcNet, RcNetBuilder};

/// Shape knobs for net generation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Minimum node count per net (>= 2).
    pub nodes_min: usize,
    /// Maximum node count per net.
    pub nodes_max: usize,
    /// Maximum sink count (clamped by available leaves).
    pub sinks_max: usize,
    /// Probability of extending the most recent node (chain) instead of
    /// branching off a random earlier node.
    pub chain_bias: f64,
    /// Loop chords added to non-tree nets (inclusive range).
    pub loops_min: usize,
    /// Loop chords added to non-tree nets (inclusive range).
    pub loops_max: usize,
    /// Probability that a node carries a coupling capacitor to a foreign
    /// aggressor net.
    pub coupling_prob: f64,
    /// Resistance multiplier for loop-closing chords. Values below 1 make
    /// chords low-resistance shortcuts, amplifying how wrong loop-broken
    /// (tree-projected) delay metrics are on non-tree nets.
    pub chord_res_factor: f64,
    /// Technology parameter ranges.
    pub tech: TechProfile,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            nodes_min: 6,
            nodes_max: 48,
            sinks_max: 8,
            chain_bias: 0.65,
            loops_min: 1,
            loops_max: 3,
            coupling_prob: 0.15,
            chord_res_factor: 0.35,
            tech: TechProfile::n16(),
        }
    }
}

/// Deterministic RC net generator.
///
/// # Examples
///
/// ```
/// use netgen::nets::{NetConfig, NetGenerator};
///
/// let mut g = NetGenerator::new(1, NetConfig::default());
/// let tree = g.tree_net("t");
/// assert!(tree.is_tree());
/// ```
#[derive(Debug)]
pub struct NetGenerator {
    rng: StdRng,
    cfg: NetConfig,
}

impl NetGenerator {
    /// Creates a generator with an explicit seed.
    pub fn new(seed: u64, cfg: NetConfig) -> Self {
        NetGenerator {
            rng: StdRng::seed_from_u64(seed),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    fn res(&mut self) -> Ohms {
        let t = &self.cfg.tech;
        Ohms(self.rng.gen_range(t.seg_res_min.value()..t.seg_res_max.value()))
    }

    fn cap(&mut self) -> Farads {
        let t = &self.cfg.tech;
        Farads(self.rng.gen_range(t.seg_cap_min.value()..t.seg_cap_max.value()))
    }

    fn pin_cap(&mut self) -> Farads {
        let t = &self.cfg.tech;
        Farads(self.rng.gen_range(t.pin_cap_min.value()..t.pin_cap_max.value()))
    }

    fn coupling_cap(&mut self) -> Farads {
        let t = &self.cfg.tech;
        Farads(
            self.rng
                .gen_range(t.coupling_cap_min.value()..t.coupling_cap_max.value()),
        )
    }

    /// Generates a tree-like net.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`nodes_min < 2` or empty
    /// ranges); the defaults are always valid.
    pub fn tree_net(&mut self, name: impl Into<String>) -> RcNet {
        self.generate(name, false)
    }

    /// Generates a non-tree net (tree plus 1+ loop-closing chords).
    pub fn nontree_net(&mut self, name: impl Into<String>) -> RcNet {
        self.generate(name, true)
    }

    /// Generates either kind.
    pub fn net(&mut self, name: impl Into<String>, nontree: bool) -> RcNet {
        self.generate(name, nontree)
    }

    fn generate(&mut self, name: impl Into<String>, nontree: bool) -> RcNet {
        let name = name.into();
        assert!(self.cfg.nodes_min >= 2, "nets need at least two nodes");
        let n_nodes = self
            .rng
            .gen_range(self.cfg.nodes_min..=self.cfg.nodes_max.max(self.cfg.nodes_min));

        let mut b = RcNetBuilder::new(name.clone());
        let source = b.source(format!("{name}:drv"), Farads(0.0));
        b.set_cap(source, self.cap());

        // Grow the routing tree.
        let mut nodes: Vec<NodeId> = vec![source];
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for i in 1..n_nodes {
            let parent = if self.rng.gen_bool(self.cfg.chain_bias) {
                *nodes.last().expect("nodes never empty")
            } else {
                nodes[self.rng.gen_range(0..nodes.len())]
            };
            let node = b.internal(format!("{name}:{i}"), Farads(0.0));
            b.set_cap(node, self.cap());
            let r = self.res();
            b.resistor(parent, node, r);
            edges.push((parent, node));
            nodes.push(node);
        }

        // Leaves = nodes with no children (degree-1, excluding the source).
        let mut has_child = vec![false; nodes.len()];
        for &(p, _) in &edges {
            has_child[p.index()] = true;
        }
        let mut leaves: Vec<NodeId> = nodes[1..]
            .iter()
            .copied()
            .filter(|n| !has_child[n.index()])
            .collect();
        if leaves.is_empty() {
            // Pure chain whose last node has a child list: take the last node.
            leaves.push(*nodes.last().expect("non-empty"));
        }
        // Every leaf that is not promoted to a sink would be a dangling
        // stub; promote a random subset (at least one) and leave the rest
        // as stubs, as extraction artifacts produce in practice.
        let n_sinks = self
            .rng
            .gen_range(1..=leaves.len().min(self.cfg.sinks_max.max(1)));
        for i in 0..n_sinks {
            // Partial Fisher-Yates: pick i-th sink uniformly.
            let j = self.rng.gen_range(i..leaves.len());
            leaves.swap(i, j);
            let leaf = leaves[i];
            let pin = self.pin_cap();
            b.promote_to_sink(leaf, pin);
        }

        // Loop chords for non-tree nets.
        if nontree && nodes.len() >= 3 {
            let n_loops = self.rng.gen_range(self.cfg.loops_min..=self.cfg.loops_max);
            let mut added = 0;
            let mut guard = 0;
            let min_span = nodes.len() / 3;
            while added < n_loops && guard < 80 {
                guard += 1;
                let ai = self.rng.gen_range(0..nodes.len());
                let ci = self.rng.gen_range(0..nodes.len());
                // Chords must span topologically distant nodes (growth
                // order approximates tree distance); nearby chords barely
                // change the electrical behaviour.
                if ai.abs_diff(ci) < min_span.max(1) {
                    continue;
                }
                let (a, c) = (nodes[ai], nodes[ci]);
                if edges.iter().any(|&(p, q)| (p == a && q == c) || (p == c && q == a)) {
                    continue;
                }
                let r = self.res() * self.cfg.chord_res_factor;
                b.resistor(a, c, r);
                edges.push((a, c));
                added += 1;
            }
        }

        // Coupling capacitors.
        for (i, &node) in nodes.iter().enumerate() {
            if self.rng.gen_bool(self.cfg.coupling_prob) {
                let cc = self.coupling_cap();
                b.coupling(node, format!("agg_{name}:{i}"), cc);
            }
        }

        b.build().expect("generated nets are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_nets_are_trees() {
        let mut g = NetGenerator::new(11, NetConfig::default());
        for i in 0..30 {
            let net = g.tree_net(format!("t{i}"));
            assert!(net.is_tree(), "net t{i} must be a tree");
            assert!(!net.sinks().is_empty());
            assert!(net.node_count() >= 6);
        }
    }

    #[test]
    fn nontree_nets_have_loops() {
        let mut g = NetGenerator::new(13, NetConfig::default());
        for i in 0..30 {
            let net = g.nontree_net(format!("n{i}"));
            assert!(!net.is_tree(), "net n{i} must have loops");
            assert!(net.loop_count() >= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NetGenerator::new(5, NetConfig::default()).tree_net("x");
        let b = NetGenerator::new(5, NetConfig::default()).tree_net("x");
        assert_eq!(a, b);
        let c = NetGenerator::new(6, NetConfig::default()).tree_net("x");
        assert_ne!(a, c);
    }

    #[test]
    fn values_within_tech_ranges() {
        let cfg = NetConfig::default();
        let mut g = NetGenerator::new(17, cfg.clone());
        let net = g.nontree_net("v");
        let r_min = cfg.tech.seg_res_min * cfg.chord_res_factor.min(1.0);
        for (_, e) in net.iter_edges() {
            assert!(e.res >= r_min && e.res <= cfg.tech.seg_res_max);
        }
        for (_, n) in net.iter_nodes() {
            // Sinks get pin cap added on top of segment cap.
            assert!(n.cap >= cfg.tech.seg_cap_min);
            assert!(n.cap <= cfg.tech.seg_cap_max + cfg.tech.pin_cap_max);
        }
    }

    #[test]
    fn sink_count_respects_bound() {
        let cfg = NetConfig {
            sinks_max: 2,
            ..Default::default()
        };
        let mut g = NetGenerator::new(23, cfg);
        for i in 0..20 {
            let net = g.tree_net(format!("s{i}"));
            assert!(net.sinks().len() <= 2);
        }
    }

    #[test]
    fn coupling_prob_zero_gives_no_couplings() {
        let cfg = NetConfig {
            coupling_prob: 0.0,
            ..Default::default()
        };
        let mut g = NetGenerator::new(29, cfg);
        let net = g.tree_net("c");
        assert!(net.couplings().is_empty());
    }
}
