//! Special-purpose net generators: balanced clock H-trees and coupled
//! buses.
//!
//! Clock trees are the deepest, most path-heavy nets in a design and
//! buses are the strongest crosstalk scenario (every bit couples to its
//! neighbors) — both stress the estimator in ways random routing trees do
//! not.

use crate::tech::TechProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcnet::{Farads, NodeId, Ohms, RcNet, RcNetBuilder};

/// Generates a balanced binary clock tree with `2^levels` sinks.
///
/// Upstream trunks are wide and downstream branches narrow, as clock-tree
/// synthesis produces: per-segment resistance grows ×1.4 and capacitance
/// shrinks ×1.5 per level, keeping all root→leaf paths electrically
/// balanced (small random jitter models on-chip variation).
///
/// # Panics
///
/// Panics when `levels == 0` or `levels > 12` (4096 sinks is plenty).
pub fn clock_htree(name: &str, levels: u32, tech: &TechProfile, seed: u64) -> RcNet {
    assert!((1..=12).contains(&levels), "levels must be 1..=12");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = RcNetBuilder::new(name);
    let base_res = (tech.seg_res_min.value() + tech.seg_res_max.value()) / 2.0;
    let base_cap = (tech.seg_cap_min.value() + tech.seg_cap_max.value()) / 2.0;

    let root = b.source(format!("{name}:drv"), Farads(base_cap));
    let mut frontier = vec![root];
    for level in 0..levels {
        // Downstream levels are narrower wires: resistance grows gently
        // (designers widen upstream trunks), capacitance shrinks with the
        // halved segment length.
        let res = Ohms(base_res * 1.4f64.powi(level as i32));
        let cap = Farads(base_cap / 1.5f64.powi(level as i32));
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (pi, &parent) in frontier.iter().enumerate() {
            for side in 0..2 {
                let is_leaf = level + 1 == levels;
                let node_name = format!("{name}:{level}_{pi}_{side}");
                let node = b.internal(node_name, cap);
                // Tiny mismatch keeps the tree realistic (OCV-style skew).
                let jitter = 1.0 + 0.02 * rng.gen_range(-1.0..1.0);
                b.resistor(parent, node, res * jitter);
                if is_leaf {
                    let pin = Farads(
                        rng.gen_range(tech.pin_cap_min.value()..tech.pin_cap_max.value()),
                    );
                    b.promote_to_sink(node, pin);
                }
                next.push(node);
            }
        }
        frontier = next;
    }
    b.build().expect("H-tree construction is valid")
}

/// A generated bus: one victim net per bit, with coupling capacitors to
/// the physically adjacent bits.
#[derive(Debug)]
pub struct Bus {
    /// Per-bit nets, index = bit position.
    pub bits: Vec<RcNet>,
}

impl Bus {
    /// Bus width.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Generates an `n_bits`-wide parallel bus of `segments`-segment routes.
///
/// Every internal node of bit `i` couples to the same position of bits
/// `i-1`/`i+1` (half coupling at the edges) — the canonical worst-case
/// switching scenario for SI analysis.
///
/// # Panics
///
/// Panics when `n_bits == 0` or `segments == 0`.
pub fn bus(name: &str, n_bits: usize, segments: usize, tech: &TechProfile, seed: u64) -> Bus {
    assert!(n_bits > 0 && segments > 0, "bus must have bits and segments");
    let mut rng = StdRng::seed_from_u64(seed);
    let res = (tech.seg_res_min.value() + tech.seg_res_max.value()) / 2.0;
    let cap = (tech.seg_cap_min.value() + tech.seg_cap_max.value()) / 2.0;
    let cc = (tech.coupling_cap_min.value() + tech.coupling_cap_max.value()) / 2.0;

    let bits = (0..n_bits)
        .map(|bit| {
            let bit_name = format!("{name}[{bit}]");
            let mut b = RcNetBuilder::new(bit_name.clone());
            let mut prev = b.source(format!("{bit_name}:drv"), Farads(cap));
            let mut nodes: Vec<NodeId> = Vec::with_capacity(segments);
            for s in 0..segments {
                let node = if s + 1 == segments {
                    let pin =
                        rng.gen_range(tech.pin_cap_min.value()..tech.pin_cap_max.value());
                    b.sink(format!("{bit_name}:load"), Farads(cap + pin))
                } else {
                    b.internal(format!("{bit_name}:{s}"), Farads(cap))
                };
                let jitter = 1.0 + 0.05 * rng.gen_range(-1.0..1.0);
                b.resistor(prev, node, Ohms(res * jitter));
                nodes.push(node);
                prev = node;
            }
            // Neighbor coupling: both sides for middle bits.
            for (s, &node) in nodes.iter().enumerate() {
                if bit > 0 {
                    b.coupling(node, format!("{name}[{}]:{s}", bit - 1), Farads(cc));
                }
                if bit + 1 < n_bits {
                    b.coupling(node, format!("{name}[{}]:{s}", bit + 1), Farads(cc));
                }
            }
            b.build().expect("bus bit is valid")
        })
        .collect();
    Bus { bits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htree_has_power_of_two_sinks_and_is_tree() {
        let net = clock_htree("clk", 4, &TechProfile::n16(), 1);
        assert!(net.is_tree());
        assert_eq!(net.sinks().len(), 16);
        assert_eq!(net.paths().len(), 16);
        // Balanced: all paths have the same hop count.
        let lens: Vec<usize> = net.paths().iter().map(|p| p.nodes.len()).collect();
        assert!(lens.iter().all(|&l| l == lens[0]));
    }

    #[test]
    fn htree_paths_are_electrically_balanced() {
        let net = clock_htree("clk", 5, &TechProfile::n16(), 2);
        let res: Vec<f64> = net
            .paths()
            .iter()
            .map(|p| p.total_res(&net).value())
            .collect();
        let min = res.iter().copied().fold(f64::INFINITY, f64::min);
        let max = res.iter().copied().fold(0.0, f64::max);
        // 2% per-segment jitter keeps spread within ~15%.
        assert!(max / min < 1.15, "spread {min}..{max}");
    }

    #[test]
    fn bus_bits_couple_to_neighbors() {
        let bus = bus("data", 4, 6, &TechProfile::n16(), 3);
        assert_eq!(bus.width(), 4);
        // Edge bits couple one-sided, middle bits two-sided.
        assert_eq!(bus.bits[0].couplings().len(), 6);
        assert_eq!(bus.bits[1].couplings().len(), 12);
        assert_eq!(bus.bits[3].couplings().len(), 6);
        // Aggressor names point at real neighbor nodes.
        assert!(bus.bits[1]
            .couplings()
            .iter()
            .any(|c| c.aggressor.starts_with("data[0]")));
        assert!(bus.bits[1]
            .couplings()
            .iter()
            .any(|c| c.aggressor.starts_with("data[2]")));
    }

    #[test]
    fn bus_bits_are_valid_chains() {
        let bus = bus("q", 3, 5, &TechProfile::n16(), 7);
        for bit in &bus.bits {
            assert!(bit.is_tree());
            assert_eq!(bit.sinks().len(), 1);
            assert_eq!(bit.node_count(), 6);
        }
    }

    #[test]
    #[should_panic]
    fn zero_levels_panics() {
        let _ = clock_htree("clk", 0, &TechProfile::n16(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = clock_htree("c", 3, &TechProfile::n16(), 5);
        let b = clock_htree("c", 3, &TechProfile::n16(), 5);
        assert_eq!(a, b);
    }
}
