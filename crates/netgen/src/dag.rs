//! Random gate-level DAGs and exact path counting.
//!
//! The paper's Fig. 1/Fig. 2(a) argument: the number of timing paths on a
//! gate netlist explodes combinatorially with gate count (ISCAS89-scale
//! circuits already exceed a million), while a wire RC net has one path
//! per sink. This module generates random combinational DAGs and counts
//! their input→output paths exactly (saturating at `u128::MAX`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A combinational gate DAG in topological order.
#[derive(Debug, Clone)]
pub struct GateDag {
    /// Per-gate fan-in lists (indices of earlier gates; empty = primary
    /// input).
    pub fanin: Vec<Vec<usize>>,
    /// Gates with no fan-out (primary outputs).
    pub outputs: Vec<usize>,
}

impl GateDag {
    /// Generates a random DAG with `n_gates` gates.
    ///
    /// The first `max(1, n/10)` gates are primary inputs; every other gate
    /// draws 1–3 fan-ins from a sliding window of earlier gates, which
    /// produces the reconvergent fan-out that makes path counts explode.
    pub fn random(n_gates: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_inputs = (n_gates / 10).max(1).min(n_gates);
        let mut fanin: Vec<Vec<usize>> = vec![Vec::new(); n_gates];
        let mut has_fanout = vec![false; n_gates];
        for (g, fi) in fanin.iter_mut().enumerate().skip(n_inputs) {
            let k = rng.gen_range(1..=3usize);
            let window = 64.min(g);
            for _ in 0..k {
                let src = g - 1 - rng.gen_range(0..window);
                if !fi.contains(&src) {
                    fi.push(src);
                    has_fanout[src] = true;
                }
            }
        }
        let outputs = (0..n_gates).filter(|&g| !has_fanout[g]).collect();
        GateDag { fanin, outputs }
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.fanin.len()
    }

    /// Whether the DAG has no gates.
    pub fn is_empty(&self) -> bool {
        self.fanin.is_empty()
    }

    /// Exact number of input→output paths, saturating at `u128::MAX`.
    ///
    /// Dynamic programming over the topological order: a primary input has
    /// one incoming path; every gate sums its fan-ins' counts.
    pub fn path_count(&self) -> u128 {
        let mut count = vec![0u128; self.len()];
        for g in 0..self.len() {
            if self.fanin[g].is_empty() {
                count[g] = 1;
            } else {
                let mut acc: u128 = 0;
                for &src in &self.fanin[g] {
                    acc = acc.saturating_add(count[src]);
                }
                count[g] = acc;
            }
        }
        self.outputs
            .iter()
            .fold(0u128, |acc, &g| acc.saturating_add(count[g]))
    }

    /// Path count as a float (for plotting; loses precision above 2^53).
    pub fn path_count_f64(&self) -> f64 {
        let mut count = vec![0f64; self.len()];
        for g in 0..self.len() {
            if self.fanin[g].is_empty() {
                count[g] = 1.0;
            } else {
                count[g] = self.fanin[g].iter().map(|&s| count[s]).sum();
            }
        }
        self.outputs.iter().map(|&g| count[g]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_built_diamond_counts_two_paths() {
        // in -> a, in -> b, a & b -> out: 2 paths.
        let dag = GateDag {
            fanin: vec![vec![], vec![0], vec![0], vec![1, 2]],
            outputs: vec![3],
        };
        assert_eq!(dag.path_count(), 2);
        assert_eq!(dag.path_count_f64(), 2.0);
    }

    #[test]
    fn chain_has_one_path() {
        let dag = GateDag {
            fanin: vec![vec![], vec![0], vec![1], vec![2]],
            outputs: vec![3],
        };
        assert_eq!(dag.path_count(), 1);
    }

    #[test]
    fn path_count_grows_superlinearly() {
        let small = GateDag::random(100, 4).path_count_f64();
        let large = GateDag::random(1000, 4).path_count_f64();
        assert!(small >= 1.0);
        assert!(
            large > small * 50.0,
            "paths must explode: {small} -> {large}"
        );
    }

    #[test]
    fn random_dag_is_topological() {
        let dag = GateDag::random(500, 7);
        for (g, fi) in dag.fanin.iter().enumerate() {
            for &src in fi {
                assert!(src < g, "fan-in must reference earlier gates");
            }
        }
        assert!(!dag.outputs.is_empty());
        assert!(!dag.is_empty());
        assert_eq!(dag.len(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GateDag::random(200, 1).path_count();
        let b = GateDag::random(200, 1).path_count();
        assert_eq!(a, b);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        // Deep reconvergence doubles counts every level; 300 levels * 2
        // fan-ins would overflow u128 around level 127.
        let mut fanin: Vec<Vec<usize>> = vec![vec![]];
        for level in 0..300 {
            let prev = level; // single chain of 2-parallel diamonds
            fanin.push(vec![prev, prev]);
        }
        let n = fanin.len();
        let dag = GateDag {
            fanin,
            outputs: vec![n - 1],
        };
        assert_eq!(dag.path_count(), u128::MAX);
        assert!(dag.path_count_f64().is_finite() || dag.path_count_f64() > 1e30);
    }
}
