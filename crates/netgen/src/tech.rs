//! Technology profile: the parameter ranges parasitics are drawn from.

use rcnet::{Farads, Ohms};

/// Value ranges for synthetic parasitics, loosely calibrated to a 16 nm
/// metal stack (tens of ohms and a fraction of a femtofarad per routed
/// segment, femtofarad-class pin caps).
#[derive(Debug, Clone, PartialEq)]
pub struct TechProfile {
    /// Per-segment resistance range.
    pub seg_res_min: Ohms,
    /// Per-segment resistance range.
    pub seg_res_max: Ohms,
    /// Per-segment ground capacitance range.
    pub seg_cap_min: Farads,
    /// Per-segment ground capacitance range.
    pub seg_cap_max: Farads,
    /// Extra pin capacitance at sinks.
    pub pin_cap_min: Farads,
    /// Extra pin capacitance at sinks.
    pub pin_cap_max: Farads,
    /// Coupling capacitance range.
    pub coupling_cap_min: Farads,
    /// Coupling capacitance range.
    pub coupling_cap_max: Farads,
    /// Supply voltage.
    pub vdd: f64,
}

impl TechProfile {
    /// The default 16 nm-flavoured profile used throughout the
    /// reproduction.
    pub fn n16() -> Self {
        TechProfile {
            seg_res_min: Ohms(5.0),
            seg_res_max: Ohms(120.0),
            seg_cap_min: Farads::from_ff(0.1),
            seg_cap_max: Farads::from_ff(2.5),
            pin_cap_min: Farads::from_ff(0.4),
            pin_cap_max: Farads::from_ff(3.0),
            coupling_cap_min: Farads::from_ff(0.2),
            coupling_cap_max: Farads::from_ff(2.0),
            vdd: 0.8,
        }
    }
}

impl Default for TechProfile {
    fn default() -> Self {
        TechProfile::n16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_ordered() {
        let t = TechProfile::n16();
        assert!(t.seg_res_min < t.seg_res_max);
        assert!(t.seg_cap_min < t.seg_cap_max);
        assert!(t.pin_cap_min < t.pin_cap_max);
        assert!(t.coupling_cap_min < t.coupling_cap_max);
        assert!(t.vdd > 0.0);
    }

    #[test]
    fn default_is_n16() {
        assert_eq!(TechProfile::default(), TechProfile::n16());
    }
}
