//! The TABLE II benchmark roster, scaled for laptop-class runs.
//!
//! Each paper design is mirrored by name with its cell/net/FF/CP counts
//! and — the part that matters for the estimator — its non-tree net
//! fraction. A `scale` knob shrinks the net counts proportionally so the
//! full train/test pipeline runs in minutes; the harness reports the
//! factor next to every runtime number.

use crate::nets::{NetConfig, NetGenerator};
use rcnet::RcNet;

/// Static statistics of one paper benchmark (TABLE II row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpec {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Cell count.
    pub cells: u64,
    /// Net count.
    pub nets: u64,
    /// Non-tree net count (parenthesized column).
    pub nontree_nets: u64,
    /// Flip-flop count.
    pub ffs: u64,
    /// Clock-pin count.
    pub cps: u64,
    /// `true` for the training split.
    pub train: bool,
}

impl DesignSpec {
    /// Fraction of nets that are non-tree.
    pub fn nontree_frac(&self) -> f64 {
        self.nontree_nets as f64 / self.nets as f64
    }
}

/// The full TABLE II roster (11 training designs, 7 test designs).
pub fn paper_roster() -> Vec<DesignSpec> {
    let t = true;
    let f = false;
    vec![
        DesignSpec { name: "PCI_BRIDGE", cells: 1234, nets: 1598, nontree_nets: 279, ffs: 310, cps: 456, train: t },
        DesignSpec { name: "DMA", cells: 10215, nets: 10898, nontree_nets: 1963, ffs: 1956, cps: 1475, train: t },
        DesignSpec { name: "B19", cells: 33785, nets: 34399, nontree_nets: 8906, ffs: 3420, cps: 5093, train: t },
        DesignSpec { name: "SALSA", cells: 52895, nets: 57737, nontree_nets: 16802, ffs: 7836, cps: 9648, train: t },
        DesignSpec { name: "RocketCore", cells: 90859, nets: 93812, nontree_nets: 38919, ffs: 16784, cps: 12475, train: t },
        DesignSpec { name: "VGA_LCD", cells: 56194, nets: 56279, nontree_nets: 20527, ffs: 17054, cps: 8761, train: t },
        DesignSpec { name: "ECG", cells: 84127, nets: 85058, nontree_nets: 31067, ffs: 14018, cps: 13189, train: t },
        DesignSpec { name: "TATE", cells: 184601, nets: 185379, nontree_nets: 51037, ffs: 31409, cps: 27931, train: t },
        DesignSpec { name: "JPEG", cells: 219064, nets: 231934, nontree_nets: 73915, ffs: 37642, cps: 36489, train: t },
        DesignSpec { name: "NETCARD", cells: 316137, nets: 317974, nontree_nets: 76924, ffs: 87317, cps: 46713, train: t },
        DesignSpec { name: "LEON3MP", cells: 341000, nets: 341263, nontree_nets: 81687, ffs: 108724, cps: 50716, train: t },
        DesignSpec { name: "WB_DMA", cells: 40962, nets: 40664, nontree_nets: 9493, ffs: 718, cps: 9619, train: f },
        DesignSpec { name: "LDPC", cells: 39377, nets: 42018, nontree_nets: 10257, ffs: 2048, cps: 7613, train: f },
        DesignSpec { name: "DES_PERT", cells: 48289, nets: 48523, nontree_nets: 9534, ffs: 2983, cps: 10976, train: f },
        DesignSpec { name: "AES-128", cells: 113168, nets: 90905, nontree_nets: 42657, ffs: 10686, cps: 24973, train: f },
        DesignSpec { name: "TV_CORE", cells: 207414, nets: 189262, nontree_nets: 53147, ffs: 40681, cps: 33706, train: f },
        DesignSpec { name: "NOVA", cells: 141990, nets: 139224, nontree_nets: 36482, ffs: 30494, cps: 39341, train: f },
        DesignSpec { name: "OPENGFX", cells: 219064, nets: 231934, nontree_nets: 62395, ffs: 37642, cps: 47831, train: f },
    ]
}

/// A generated (scaled) design: the spec plus its parasitic nets.
#[derive(Debug)]
pub struct Design {
    /// The paper statistics this design mirrors.
    pub spec: DesignSpec,
    /// Scale factor applied to the net count.
    pub scale: f64,
    /// Generated nets; non-tree nets first would bias training, so tree
    /// and non-tree nets are interleaved in generation order.
    pub nets: Vec<RcNet>,
}

impl Design {
    /// Number of generated nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Generated non-tree nets.
    pub fn nontree_nets(&self) -> impl Iterator<Item = &RcNet> {
        self.nets.iter().filter(|n| !n.is_tree())
    }
}

/// Stable per-design seed derived from a global seed and the design name.
fn design_seed(global: u64, name: &str) -> u64 {
    // FNV-1a over the name, mixed with the global seed.
    let mut h: u64 = 0xcbf29ce484222325 ^ global.wrapping_mul(0x100000001b3);
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Generates the scaled nets of one design.
///
/// `scale` multiplies the paper's net count (e.g. `0.005` turns 40 664
/// WB_DMA nets into ~203); the non-tree fraction is preserved exactly.
/// At least one net of each present kind is generated.
///
/// # Panics
///
/// Panics when `scale` is not positive.
pub fn generate_design(spec: &DesignSpec, scale: f64, global_seed: u64, cfg: NetConfig) -> Design {
    assert!(scale > 0.0, "scale must be positive");
    let _span = obs::span("design_gen");
    let total = ((spec.nets as f64 * scale).round() as usize).max(2);
    let nontree = ((total as f64 * spec.nontree_frac()).round() as usize)
        .max(1)
        .min(total - 1);
    let mut g = NetGenerator::new(design_seed(global_seed, spec.name), cfg);
    let net_counter = obs::counter("netgen.nets");
    let nontree_counter = obs::counter("netgen.nontree_nets");
    let node_hist = obs::histogram_with("netgen.net.nodes", None, || {
        obs::exponential_bounds(2.0, 2.0, 12)
    });
    // Interleave tree and non-tree nets deterministically.
    let mut nets = Vec::with_capacity(total);
    let mut made_nontree = 0usize;
    for i in 0..total {
        // Spread the non-tree nets evenly across the index range.
        let want_nontree = (i + 1) * nontree / total;
        let is_nontree = want_nontree > made_nontree;
        if is_nontree {
            made_nontree += 1;
        }
        let net = {
            let _s = obs::span("net");
            g.net(format!("{}_n{i}", spec.name), is_nontree)
        };
        node_hist.observe(net.node_count() as f64);
        nets.push(net);
    }
    net_counter.add(total as u64);
    nontree_counter.add(made_nontree as u64);
    obs::event!(
        obs::Level::Debug,
        "netgen.designs",
        "design generated",
        design = spec.name,
        nets = total,
        nontree = made_nontree,
        scale = scale,
    );
    Design {
        spec: spec.clone(),
        scale,
        nets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_totals() {
        let roster = paper_roster();
        assert_eq!(roster.len(), 18);
        let train: Vec<_> = roster.iter().filter(|d| d.train).collect();
        let test: Vec<_> = roster.iter().filter(|d| !d.train).collect();
        assert_eq!(train.len(), 11);
        assert_eq!(test.len(), 7);
        // Paper totals for the test split: 810264 cells / 782530 nets /
        // 223965 non-tree.
        assert_eq!(test.iter().map(|d| d.cells).sum::<u64>(), 810264);
        assert_eq!(test.iter().map(|d| d.nets).sum::<u64>(), 782530);
        assert_eq!(test.iter().map(|d| d.nontree_nets).sum::<u64>(), 223965);
    }

    #[test]
    fn generation_preserves_nontree_fraction() {
        let spec = paper_roster()
            .into_iter()
            .find(|d| d.name == "WB_DMA")
            .unwrap();
        let d = generate_design(&spec, 0.005, 1, NetConfig::default());
        let total = d.net_count();
        let nontree = d.nontree_nets().count();
        assert!(total >= 150, "got {total}");
        let frac = nontree as f64 / total as f64;
        assert!(
            (frac - spec.nontree_frac()).abs() < 0.03,
            "fraction {frac} vs {}",
            spec.nontree_frac()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = paper_roster()
            .into_iter()
            .find(|d| d.name == "LDPC")
            .unwrap();
        let a = generate_design(&spec, 0.001, 9, NetConfig::default());
        let b = generate_design(&spec, 0.001, 9, NetConfig::default());
        assert_eq!(a.nets, b.nets);
    }

    #[test]
    fn different_designs_differ() {
        let roster = paper_roster();
        let a = generate_design(&roster[0], 0.01, 9, NetConfig::default());
        let b = generate_design(&roster[1], 0.001, 9, NetConfig::default());
        assert_ne!(a.nets.first(), b.nets.first());
    }

    #[test]
    #[should_panic]
    fn zero_scale_panics() {
        let spec = paper_roster().remove(0);
        let _ = generate_design(&spec, 0.0, 1, NetConfig::default());
    }
}
