//! The incremental-timing oracle: a session that re-times only its
//! dirty cone after a random edit sequence must agree *exactly* (≤1e-9 s)
//! with a cold full re-time of the same final design state, and two
//! identically-constructed sessions must report identical dirty sets.
//! Also proves a model-generation change can never serve stale cached
//! predictions.

use eco::design::from_netgen;
use eco::{DesignSession, EcoEdit, PredictionCache};
use gnntrans::WireTimingEstimator;
use proptest::prelude::*;
use rcnet::Seconds;
use sta::netlist::Netlist;
use std::sync::OnceLock;

/// Splitmix64 so the test owns its randomness.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn train(seed: u64) -> WireTimingEstimator {
    use gnntrans::{DatasetBuilder, EstimatorConfig};
    use netgen::nets::{NetConfig, NetGenerator};
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 12,
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed, cfg);
    let nets: Vec<_> = (0..24).map(|i| g.net(format!("d{i}"), i % 3 == 0)).collect();
    let data = DatasetBuilder::new(seed.wrapping_add(1))
        .build(&nets)
        .expect("featurize");
    let mut est = WireTimingEstimator::new(
        &EstimatorConfig {
            gnn_layers: 2,
            attn_layers: 1,
            hidden: 8,
            heads: 2,
            mlp_hidden: 8,
            epochs: 4,
            lr: 5e-3,
        },
        seed,
    );
    est.train(&data).expect("train");
    est
}

fn estimator() -> &'static WireTimingEstimator {
    static EST: OnceLock<WireTimingEstimator> = OnceLock::new();
    EST.get_or_init(|| train(17))
}

/// One random, *valid* edit against the current design state.
fn random_edit(nl: &Netlist, rng: &mut u64) -> EcoEdit {
    const CELLS: [&str; 5] = ["BUF_X1", "BUF_X2", "BUF_X4", "INV_X1", "INV_X2"];
    loop {
        let i = (mix(rng) % nl.nets().len() as u64) as usize;
        let ni = &nl.nets()[i];
        let net = ni.rc.name().to_string();
        match mix(rng) % 5 {
            0 => {
                if ni.driver.is_none() {
                    continue;
                }
                let cell = CELLS[(mix(rng) % CELLS.len() as u64) as usize];
                return EcoEdit::ResizeDriver { net, cell: cell.into() };
            }
            1 => {
                let sinks = ni.rc.sinks();
                let sid = sinks[(mix(rng) % sinks.len() as u64) as usize];
                return EcoEdit::SetSinkLoad {
                    net,
                    sink: ni.rc.node(sid).name.clone(),
                    ceff_ff: 0.5 + (mix(rng) % 50) as f64 / 10.0,
                };
            }
            2 => {
                let sinks = ni.rc.sinks();
                let sid = sinks[(mix(rng) % sinks.len() as u64) as usize];
                return EcoEdit::InsertBuffer {
                    net,
                    sink: ni.rc.node(sid).name.clone(),
                    cell: "BUF_X2".into(),
                };
            }
            3 => {
                let edges: Vec<_> = ni.rc.iter_edges().collect();
                let (_, e) = edges[(mix(rng) % edges.len() as u64) as usize];
                return EcoEdit::SetResistance {
                    a: ni.rc.node(e.a).name.clone(),
                    b: ni.rc.node(e.b).name.clone(),
                    net,
                    ohms: 1.0 + (mix(rng) % 200) as f64,
                };
            }
            _ => {
                let nodes: Vec<_> = ni.rc.iter_nodes().collect();
                let (_, node) = nodes[(mix(rng) % nodes.len() as u64) as usize];
                return EcoEdit::SetCap {
                    net,
                    node: node.name.clone(),
                    ff: 0.1 + (mix(rng) % 80) as f64 / 10.0,
                };
            }
        }
    }
}

fn assert_timing_agrees(a: &DesignSession, b: &DesignSession) {
    let (ta, tb) = (a.all_timing(), b.all_timing());
    assert_eq!(ta.len(), tb.len());
    for (x, y) in ta.iter().zip(tb) {
        assert_eq!(x.at_sinks.len(), y.at_sinks.len());
        for (&(at_x, sl_x), &(at_y, sl_y)) in x.at_sinks.iter().zip(&y.at_sinks) {
            assert!(
                (at_x.value() - at_y.value()).abs() <= 1e-9,
                "arrival mismatch: {} vs {}",
                at_x.value(),
                at_y.value()
            );
            assert!((sl_x.value() - sl_y.value()).abs() <= 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After a random edit sequence, incremental timing equals a cold
    /// full re-time of the same final design, and two identical
    /// sessions dirty identical net sets.
    #[test]
    fn incremental_retime_matches_cold_full_retime(seed in 0u64..10_000) {
        let est = estimator();
        let nl = from_netgen("PCI_BRIDGE", 0.02, seed ^ 0xabc).unwrap();
        let slew = Seconds::from_ps(20.0);
        let cache_a = PredictionCache::new(4, 1 << 20);
        let cache_b = PredictionCache::new(4, 1 << 20);
        let mut a = DesignSession::new("a", nl.clone(), slew);
        let mut b = DesignSession::new("b", nl, slew);
        a.full_retime(est, 1, &cache_a).unwrap();
        b.full_retime(est, 1, &cache_b).unwrap();

        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for _ in 0..3 {
            let n_edits = 1 + (mix(&mut rng) % 2) as usize;
            let mut snap = rng; // both sessions draw the same edits
            let edits_a: Vec<_> =
                (0..n_edits).map(|_| random_edit(a.netlist(), &mut rng)).collect();
            let edits_b: Vec<_> =
                (0..n_edits).map(|_| random_edit(b.netlist(), &mut snap)).collect();
            prop_assert_eq!(&edits_a, &edits_b);

            let ra = a.apply(&edits_a, est, 1, &cache_a).unwrap();
            let rb = b.apply(&edits_b, est, 1, &cache_b).unwrap();
            // Identical sessions must dirty identical net sets.
            prop_assert_eq!(&ra.dirty_nets, &rb.dirty_nets);
            assert_timing_agrees(&a, &b);
        }

        // The oracle: a cold full re-time of the final design state,
        // through a fresh cache, agrees with the incremental solution.
        let fresh = PredictionCache::new(4, 1 << 20);
        b.full_retime(est, 1, &fresh).unwrap();
        assert_timing_agrees(&a, &b);
        prop_assert_eq!(a.epoch(), b.epoch());

        // Cache keys are (net_hash, ctx_hash, generation) only — the
        // forward backend / graph packing never leaks into them. Entries
        // written by the tape-free path must therefore serve a warm
        // re-time under the tape oracle backend with a 100% hit rate.
        let mut oracle = est.clone();
        oracle.set_forward_backend(gnntrans::ForwardBackend::Tape);
        let warm = b.full_retime(&oracle, 1, &fresh).unwrap();
        prop_assert_eq!(warm.cache_misses, 0, "packing perturbed cache keys");
        prop_assert_eq!(warm.cache_hits, warm.nets_retimed as u64);
        assert_timing_agrees(&a, &b);
    }
}

/// A generation bump escalates to a full re-time under the *new* model:
/// the shared cache still holds every old-generation entry, yet none of
/// them can be served because the generation is part of the key.
#[test]
fn model_generation_change_never_serves_stale_predictions() {
    let old = estimator();
    let new = train(99); // different weights entirely
    let slew = Seconds::from_ps(20.0);
    let cache = PredictionCache::new(4, 1 << 20);
    let nl = from_netgen("PCI_BRIDGE", 0.02, 5).unwrap();

    let mut s = DesignSession::new("s", nl.clone(), slew);
    s.full_retime(old, 1, &cache).unwrap();
    let edit = EcoEdit::SetSinkLoad {
        net: s.netlist().nets()[0].rc.name().to_string(),
        sink: s.netlist().nets()[0].rc.node(s.netlist().nets()[0].rc.sinks()[0]).name.clone(),
        ceff_ff: 3.0,
    };
    let r1 = s.apply(std::slice::from_ref(&edit), old, 1, &cache).unwrap();
    assert!(!r1.full_retime);
    let t1 = s.all_timing().to_vec();

    // Same design, same edit, same (warm!) cache — new generation.
    let mut s2 = DesignSession::new("s2", nl, slew);
    s2.full_retime(old, 1, &cache).unwrap();
    let r2 = s2.apply(&[edit], &new, 2, &cache).unwrap();
    assert!(r2.full_retime, "generation change must escalate to full re-time");
    assert_eq!(s2.model_generation(), 2);
    let t2 = s2.all_timing().to_vec();

    // And the numbers come from the new model, not the old cache.
    let reference = {
        let fresh = PredictionCache::new(4, 1 << 20);
        let mut cold = DesignSession::new("c", s2.netlist().clone(), slew);
        cold.full_retime(&new, 2, &fresh).unwrap();
        cold.all_timing().to_vec()
    };
    for (x, y) in t2.iter().zip(&reference) {
        for (&(ax, _), &(ay, _)) in x.at_sinks.iter().zip(&y.at_sinks) {
            assert!((ax.value() - ay.value()).abs() <= 1e-9);
        }
    }
    let differs = t1
        .iter()
        .zip(&t2)
        .any(|(x, y)| {
            x.at_sinks
                .iter()
                .zip(&y.at_sinks)
                .any(|(&(ax, _), &(ay, _))| (ax.value() - ay.value()).abs() > 1e-15)
        });
    assert!(differs, "two different models should not time identically");
}

/// Rollback restores the exact pre-edit state (timing, hashes, epoch).
#[test]
fn rollback_restores_exact_pre_edit_state() {
    let est = estimator();
    let cache = PredictionCache::new(4, 1 << 20);
    let slew = Seconds::from_ps(20.0);
    let nl = from_netgen("DMA", 0.02, 3).unwrap();
    let mut s = DesignSession::new("s", nl, slew);
    s.full_retime(est, 1, &cache).unwrap();
    let before = s.all_timing().to_vec();
    let nets_before = s.netlist().nets().len();

    let net = s.netlist().nets()[1].rc.name().to_string();
    let sink = {
        let rc = &s.netlist().nets()[1].rc;
        rc.node(rc.sinks()[0]).name.clone()
    };
    s.apply(
        &[EcoEdit::InsertBuffer { net, sink, cell: "BUF_X4".into() }],
        est,
        1,
        &cache,
    )
    .unwrap();
    assert_eq!(s.epoch(), 1);
    assert_eq!(s.netlist().nets().len(), nets_before + 1);

    s.rollback(0).unwrap();
    assert_eq!(s.epoch(), 0);
    assert_eq!(s.netlist().nets().len(), nets_before);
    let after = s.all_timing().to_vec();
    assert_eq!(before.len(), after.len());
    for (x, y) in before.iter().zip(&after) {
        assert_eq!(x.at_sinks, y.at_sinks);
    }
    assert!(matches!(s.rollback(7), Err(eco::EcoError::UnknownEpoch(7))));
}
