//! Incremental ECO timing engine.
//!
//! The paper's target workload is an optimizer *inside* the timing loop:
//! resize a driver, insert a buffer, tweak a wire — and re-time only what
//! changed, thousands of times per design. The stateless `/v1/predict`
//! path re-featurizes and re-infers the whole input every call; this
//! crate keeps the design resident instead:
//!
//! * [`session::DesignSession`] — a loaded design (gate netlist + per-net
//!   parasitics) with its current arrival-time solution. Edits
//!   ([`edit::EcoEdit`]) dirty the touched nets plus their downstream
//!   cone ([`sta::netlist::Netlist::downstream_nets`]); only that cone is
//!   re-leveled.
//! * [`cache::PredictionCache`] — a sharded LRU keyed by the canonical
//!   net content hash ([`rcnet::hash::content_hash`]) combined with the
//!   driver/load context hash and the model generation, so unchanged
//!   nets cost a hash probe instead of a model inference, and a model
//!   hot-reload can never serve stale predictions.
//! * [`manager::SessionManager`] — named concurrent sessions under a
//!   byte budget, with epoch-tagged snapshots so a rejected ECO rolls
//!   back exactly.
//!
//! The `serve` crate exposes this as `POST /v1/session`,
//! `POST /v1/session/{id}/eco`, `GET /v1/session/{id}/timing` and
//! `DELETE /v1/session/{id}`.

pub mod cache;
pub mod design;
pub mod edit;
pub mod manager;
pub mod session;

pub use cache::{CacheStats, PredictionCache};
pub use edit::EcoEdit;
pub use manager::{ManagerStats, SessionManager};
pub use session::{DesignSession, EcoReport, RetimeStats, TimingSummary};

use std::error::Error;
use std::fmt;

/// Errors produced by the ECO engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcoError {
    /// The design could not be built (bad spec, bad SPEF, cyclic netlist).
    BadDesign(String),
    /// An edit referenced a net name the design does not have.
    UnknownNet(String),
    /// An edit referenced a node name the named net does not have.
    UnknownNode {
        /// The net searched.
        net: String,
        /// The missing node.
        node: String,
    },
    /// An edit referenced a cell the library does not have.
    UnknownCell(String),
    /// The session id does not exist (or was evicted).
    UnknownSession(String),
    /// A rollback targeted an epoch with no retained snapshot.
    UnknownEpoch(u64),
    /// The edit is structurally invalid for this design.
    BadEdit(String),
    /// Netlist-level failure (cycle, disconnected pin).
    Sta(String),
    /// Model-level failure (untrained, feature extraction).
    Model(String),
    /// RC-network rebuild failure after an edit.
    Net(String),
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::BadDesign(m) => write!(f, "bad design: {m}"),
            EcoError::UnknownNet(n) => write!(f, "unknown net `{n}`"),
            EcoError::UnknownNode { net, node } => {
                write!(f, "net `{net}` has no node `{node}`")
            }
            EcoError::UnknownCell(c) => write!(f, "unknown cell `{c}`"),
            EcoError::UnknownSession(s) => write!(f, "unknown session `{s}`"),
            EcoError::UnknownEpoch(e) => write!(f, "no snapshot retained for epoch {e}"),
            EcoError::BadEdit(m) => write!(f, "bad edit: {m}"),
            EcoError::Sta(m) => write!(f, "netlist error: {m}"),
            EcoError::Model(m) => write!(f, "model error: {m}"),
            EcoError::Net(m) => write!(f, "RC edit error: {m}"),
        }
    }
}

impl Error for EcoError {}

impl From<sta::StaError> for EcoError {
    fn from(e: sta::StaError) -> Self {
        EcoError::Sta(e.to_string())
    }
}

impl From<gnntrans::CoreError> for EcoError {
    fn from(e: gnntrans::CoreError) -> Self {
        EcoError::Model(e.to_string())
    }
}

impl From<rcnet::RcNetError> for EcoError {
    fn from(e: rcnet::RcNetError) -> Self {
        EcoError::Net(e.to_string())
    }
}
