//! Stateful design sessions with incremental re-timing.
//!
//! A session owns a [`sta::netlist::Netlist`] plus its current
//! arrival-time solution. Applying a batch of [`EcoEdit`]s:
//!
//! 1. snapshots the pre-edit state (epoch-tagged, for rollback);
//! 2. mutates the netlist (driver resize / buffer insertion / RC
//!    rebuild), collecting the *seed* nets each edit touches — including
//!    upstream nets whose driver/load context changed (a resized gate
//!    presents a different pin capacitance to the nets feeding it);
//! 3. expands seeds to the dirty cone (seeds plus everything downstream
//!    through fanout gates);
//! 4. re-times only dirty nets, in net topological order, reusing the
//!    stored timing of clean nets. Per-net wire predictions go through
//!    the content-addressed [`PredictionCache`]; arrival arithmetic is
//!    [`sta::netlist::Netlist::gate_output_arrival`] — the same code
//!    `propagate` uses, so an incremental solution is arithmetically
//!    identical to a cold full re-time of the same design.
//!
//! A re-time under a *different* model generation escalates to a full
//! re-time: every stored number was produced by the old weights.

use crate::cache::{cache_key, CachedPaths, PredictionCache};
use crate::edit::{rebuild_net, EcoEdit};
use crate::EcoError;
use gnntrans::features::LoadInfo;
use gnntrans::{NetContext, WireTimingEstimator};
use rcnet::{content_hash, Farads, Fnv1a, Ohms, RcNetBuilder, Seconds};
use sta::cells::CellLibrary;
use sta::netlist::{NetId, NetTiming, Netlist};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Per-retime effort breakdown, in seconds and cache events. The four
/// durations map onto the `dirty_set` / `cache_lookup` / `predict` /
/// `propagate` trace stages.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetimeStats {
    /// Seconds computing the dirty cone.
    pub dirty_set_s: f64,
    /// Seconds probing the prediction cache.
    pub cache_lookup_s: f64,
    /// Seconds inside the model for cache misses.
    pub predict_s: f64,
    /// Seconds of arrival-time arithmetic (re-leveling the cone).
    pub propagate_s: f64,
    /// Cache hits during this re-time.
    pub cache_hits: u64,
    /// Cache misses during this re-time.
    pub cache_misses: u64,
    /// Nets actually re-timed.
    pub nets_retimed: usize,
}

/// Outcome of one applied ECO batch.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoReport {
    /// The session epoch after the batch (monotonic; snapshot tag).
    pub epoch: u64,
    /// Names of the nets the batch dirtied, in netlist index order.
    pub dirty_nets: Vec<String>,
    /// Effort breakdown.
    pub stats: RetimeStats,
    /// The model generation the re-time ran under.
    pub model_generation: u64,
    /// Whether a generation change escalated this batch to a full re-time.
    pub full_retime: bool,
}

/// The worst (latest-arriving) endpoint of the design.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalEndpoint {
    /// Net carrying the endpoint.
    pub net: String,
    /// Sink pin name.
    pub sink: String,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Slew, seconds.
    pub slew: f64,
}

/// A point-in-time timing summary for `GET /v1/session/{id}/timing`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSummary {
    /// Net count.
    pub nets: usize,
    /// Gate count.
    pub gates: usize,
    /// Current epoch.
    pub epoch: u64,
    /// Model generation the stored timing was computed with.
    pub model_generation: u64,
    /// Worst endpoint (absent only for a design with no open pins).
    pub critical: Option<CriticalEndpoint>,
}

/// Epoch-tagged pre-edit state for rollback.
struct Snapshot {
    epoch: u64,
    netlist: Netlist,
    load_overrides: HashMap<(usize, usize), f64>,
    net_hash: Vec<u64>,
    sink_names: Vec<Vec<String>>,
    net_index: HashMap<String, usize>,
    timing: Vec<NetTiming>,
    model_generation: u64,
}

/// How many rejected-ECO rollback points a session retains.
const MAX_SNAPSHOTS: usize = 8;

/// A loaded design with its current incremental timing solution.
pub struct DesignSession {
    name: String,
    netlist: Netlist,
    lib: CellLibrary,
    input_slew: Seconds,
    /// `(net index, sink pos)` → overridden effective load, farads.
    load_overrides: HashMap<(usize, usize), f64>,
    /// Canonical content hash per net (recomputed on RC change).
    net_hash: Vec<u64>,
    /// Sink node names per net (cache-entry validation + reports).
    sink_names: Vec<Vec<String>>,
    net_index: HashMap<String, usize>,
    timing: Vec<NetTiming>,
    epoch: u64,
    model_generation: u64,
    snapshots: VecDeque<Snapshot>,
    /// Monotonic counter naming inserted buffer stubs.
    buf_counter: u64,
}

fn empty_timing() -> NetTiming {
    NetTiming {
        at_driver: (Seconds(0.0), Seconds(0.0)),
        at_sinks: Vec::new(),
    }
}

fn sink_names_of(rc: &rcnet::RcNet) -> Vec<String> {
    rc.sinks().iter().map(|&s| rc.node(s).name.clone()).collect()
}

/// Hashes the driver/load context a net is predicted under. Combined
/// with the net content hash and model generation this forms the cache
/// key, so *any* context change (upstream slew, driver resize, load
/// override) re-predicts instead of reusing a stale entry.
fn ctx_hash(ctx: &NetContext) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"eco.ctx.v1")
        .write_f64(ctx.input_slew.value())
        .write_f64(ctx.drive_strength)
        .write_f64(ctx.drive_func)
        .write_f64(ctx.drive_res.value())
        .write_u64(ctx.loads.len() as u64);
    for l in &ctx.loads {
        h.write_f64(l.drive).write_f64(l.func).write_f64(l.ceff);
    }
    h.finish()
}

impl DesignSession {
    /// Wraps a netlist into an *untimed* session; call
    /// [`DesignSession::full_retime`] before reading timing.
    pub fn new(name: impl Into<String>, netlist: Netlist, input_slew: Seconds) -> Self {
        let net_hash: Vec<u64> = netlist.nets().iter().map(|n| content_hash(&n.rc)).collect();
        let sink_names: Vec<Vec<String>> =
            netlist.nets().iter().map(|n| sink_names_of(&n.rc)).collect();
        let net_index: HashMap<String, usize> = netlist
            .nets()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.rc.name().to_string(), i))
            .collect();
        let timing = vec![empty_timing(); netlist.nets().len()];
        DesignSession {
            name: name.into(),
            netlist,
            lib: CellLibrary::builtin(),
            input_slew,
            load_overrides: HashMap::new(),
            net_hash,
            sink_names,
            net_index,
            timing,
            epoch: 0,
            model_generation: 0,
            snapshots: VecDeque::new(),
            buf_counter: 0,
        }
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current epoch (bumped by every applied batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The model generation the stored timing was computed under.
    pub fn model_generation(&self) -> u64 {
        self.model_generation
    }

    /// The underlying netlist (read-only).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Rough resident size: netlist + timing, times retained snapshots.
    pub fn approx_bytes(&self) -> usize {
        let nets: usize = self
            .netlist
            .nets()
            .iter()
            .map(|n| n.rc.node_count() * 96 + n.rc.edge_count() * 32)
            .sum();
        let timing: usize = self.timing.iter().map(|t| 48 + t.at_sinks.len() * 32).sum();
        let gates = self.netlist.gates().len() * 160;
        (nets + timing + gates) * (1 + self.snapshots.len())
    }

    /// The driver/load context net `i` is currently timed under.
    fn ctx_for(&self, i: usize, slew: Seconds) -> NetContext {
        let ni = &self.netlist.nets()[i];
        let mut ctx = match ni.driver {
            Some(g) => NetContext::for_driver(&ni.rc, &self.netlist.gates()[g.0].cell, slew),
            None => {
                let mut c = NetContext::generic(&ni.rc);
                c.input_slew = slew;
                c
            }
        };
        for (pos, fo) in ni.fanout.iter().enumerate() {
            if let Some(g) = fo {
                let cell = &self.netlist.gates()[g.0].cell;
                ctx.loads[pos] = LoadInfo {
                    drive: cell.drive(),
                    func: cell.func().encode(),
                    ceff: cell.pin_cap().value(),
                };
            }
            if let Some(&ov) = self.load_overrides.get(&(i, pos)) {
                ctx.loads[pos].ceff = ov;
            }
        }
        ctx
    }

    /// Re-times the nets marked in `dirty`, in net topological order.
    fn retime(
        &mut self,
        dirty: &[bool],
        est: &WireTimingEstimator,
        generation: u64,
        cache: &PredictionCache,
    ) -> Result<RetimeStats, EcoError> {
        let loop_start = Instant::now();
        let mut stats = RetimeStats::default();
        let order = self.netlist.net_topo_order()?;
        for n in order {
            if !dirty[n.0] {
                continue;
            }
            let at_driver = match self.netlist.nets()[n.0].driver {
                None => (Seconds(0.0), self.input_slew),
                Some(g) => {
                    let timing = &self.timing;
                    self.netlist
                        .gate_output_arrival(g, |net| Some(timing[net.0].at_sinks.as_slice()))?
                }
            };
            let ctx = self.ctx_for(n.0, at_driver.1);
            let key = cache_key(self.net_hash[n.0], ctx_hash(&ctx), generation);

            let t_probe = Instant::now();
            let cached = cache.get(key, &self.sink_names[n.0]);
            stats.cache_lookup_s += t_probe.elapsed().as_secs_f64();

            let paths: Vec<(Seconds, Seconds)> = match cached {
                Some(v) => {
                    stats.cache_hits += 1;
                    v.timings().collect()
                }
                None => {
                    stats.cache_misses += 1;
                    let t_pred = Instant::now();
                    let ests = est.predict_net(&self.netlist.nets()[n.0].rc, &ctx)?;
                    stats.predict_s += t_pred.elapsed().as_secs_f64();
                    cache.insert(key, Arc::new(CachedPaths::new(&self.sink_names[n.0], &ests)));
                    ests.iter().map(|e| (e.slew, e.delay)).collect()
                }
            };
            self.timing[n.0] = NetTiming {
                at_driver,
                at_sinks: paths
                    .iter()
                    .map(|&(slew, delay)| (at_driver.0 + delay, slew))
                    .collect(),
            };
            stats.nets_retimed += 1;
        }
        stats.propagate_s = (loop_start.elapsed().as_secs_f64()
            - stats.cache_lookup_s
            - stats.predict_s)
            .max(0.0);
        self.model_generation = generation;
        Ok(stats)
    }

    /// Times (or re-times) the whole design under `generation`.
    pub fn full_retime(
        &mut self,
        est: &WireTimingEstimator,
        generation: u64,
        cache: &PredictionCache,
    ) -> Result<RetimeStats, EcoError> {
        let dirty = vec![true; self.netlist.nets().len()];
        self.retime(&dirty, est, generation, cache)
    }

    fn snapshot(&mut self) {
        self.snapshots.push_back(Snapshot {
            epoch: self.epoch,
            netlist: self.netlist.clone(),
            load_overrides: self.load_overrides.clone(),
            net_hash: self.net_hash.clone(),
            sink_names: self.sink_names.clone(),
            net_index: self.net_index.clone(),
            timing: self.timing.clone(),
            model_generation: self.model_generation,
        });
        while self.snapshots.len() > MAX_SNAPSHOTS {
            self.snapshots.pop_front();
        }
    }

    fn restore(&mut self, s: Snapshot) {
        self.epoch = s.epoch;
        self.netlist = s.netlist;
        self.load_overrides = s.load_overrides;
        self.net_hash = s.net_hash;
        self.sink_names = s.sink_names;
        self.net_index = s.net_index;
        self.timing = s.timing;
        self.model_generation = s.model_generation;
    }

    fn net_idx(&self, name: &str) -> Result<usize, EcoError> {
        self.net_index
            .get(name)
            .copied()
            .ok_or_else(|| EcoError::UnknownNet(name.to_string()))
    }

    fn sink_pos(&self, net_idx: usize, sink: &str) -> Result<usize, EcoError> {
        self.sink_names[net_idx]
            .iter()
            .position(|n| n == sink)
            .ok_or_else(|| EcoError::UnknownNode {
                net: self.netlist.nets()[net_idx].rc.name().to_string(),
                node: sink.to_string(),
            })
    }

    fn cell(&self, name: &str) -> Result<sta::cells::Cell, EcoError> {
        self.lib
            .cell(name)
            .cloned()
            .ok_or_else(|| EcoError::UnknownCell(name.to_string()))
    }

    /// Mutates the design for one edit; returns the seed nets whose
    /// timing inputs changed.
    fn apply_edit(&mut self, edit: &EcoEdit) -> Result<Vec<NetId>, EcoError> {
        let idx = self.net_idx(edit.net())?;
        match edit {
            EcoEdit::ResizeDriver { cell, .. } => {
                let gid = self.netlist.nets()[idx].driver.ok_or_else(|| {
                    EcoError::BadEdit(format!(
                        "net `{}` is a primary input; nothing to resize",
                        edit.net()
                    ))
                })?;
                let new_cell = self.cell(cell)?;
                let old = self.netlist.set_gate_cell(gid, new_cell)?;
                // The resized gate changes its output net's drive *and*
                // the pin capacitance its input nets see.
                let mut seeds = vec![NetId(idx)];
                seeds.extend(self.netlist.gates()[gid.0].inputs.iter().copied());
                let _ = old;
                Ok(seeds)
            }
            EcoEdit::SetSinkLoad { sink, ceff_ff, .. } => {
                if !(ceff_ff.is_finite() && *ceff_ff >= 0.0) {
                    return Err(EcoError::BadEdit(format!("bad ceff_ff {ceff_ff}")));
                }
                let pos = self.sink_pos(idx, sink)?;
                self.load_overrides.insert((idx, pos), ceff_ff * 1e-15);
                Ok(vec![NetId(idx)])
            }
            EcoEdit::InsertBuffer { sink, cell, .. } => {
                let pos = self.sink_pos(idx, sink)?;
                let buf_cell = self.cell(cell)?;
                self.buf_counter += 1;
                let stub_name = format!("eco_buf{}", self.buf_counter);
                let mut b = RcNetBuilder::new(stub_name.clone());
                let s = b.source(format!("{stub_name}:Z"), Farads(0.1e-15));
                let k = b.sink(format!("{stub_name}:A"), Farads(0.5e-15));
                b.resistor(s, k, Ohms(15.0));
                let stub = b.build()?;
                let (_, stub_net) = self.netlist.insert_buffer(NetId(idx), pos, buf_cell, stub)?;
                let rc = &self.netlist.nets()[stub_net.0].rc;
                self.net_hash.push(content_hash(rc));
                self.sink_names.push(sink_names_of(rc));
                self.net_index.insert(stub_name, stub_net.0);
                self.timing.push(empty_timing());
                Ok(vec![NetId(idx), stub_net])
            }
            EcoEdit::SetResistance { a, b, ohms, .. } => {
                if !(ohms.is_finite() && *ohms > 0.0) {
                    return Err(EcoError::BadEdit(format!("bad resistance {ohms}")));
                }
                let mut matched = false;
                let rc = &self.netlist.nets()[idx].rc;
                let rebuilt = rebuild_net(
                    rc,
                    |_, _| None,
                    |x, y, _| {
                        if (x == a && y == b) || (x == b && y == a) {
                            matched = true;
                            Some(Ohms(*ohms))
                        } else {
                            None
                        }
                    },
                    &[],
                )?;
                if !matched {
                    return Err(EcoError::BadEdit(format!(
                        "net `{}` has no resistor between `{a}` and `{b}`",
                        edit.net()
                    )));
                }
                self.replace_rc(idx, rebuilt)?;
                Ok(vec![NetId(idx)])
            }
            EcoEdit::SetCap { node, ff, .. } => {
                if !(ff.is_finite() && *ff >= 0.0) {
                    return Err(EcoError::BadEdit(format!("bad capacitance {ff}")));
                }
                let mut matched = false;
                let rc = &self.netlist.nets()[idx].rc;
                let rebuilt = rebuild_net(
                    rc,
                    |name, _| {
                        if name == node {
                            matched = true;
                            Some(Farads(ff * 1e-15))
                        } else {
                            None
                        }
                    },
                    |_, _, _| None,
                    &[],
                )?;
                if !matched {
                    return Err(EcoError::UnknownNode {
                        net: edit.net().to_string(),
                        node: node.clone(),
                    });
                }
                self.replace_rc(idx, rebuilt)?;
                Ok(vec![NetId(idx)])
            }
            EcoEdit::AddResistor { a, b, ohms, .. } => {
                if !(ohms.is_finite() && *ohms > 0.0) {
                    return Err(EcoError::BadEdit(format!("bad resistance {ohms}")));
                }
                let rc = &self.netlist.nets()[idx].rc;
                let rebuilt = rebuild_net(
                    rc,
                    |_, _| None,
                    |_, _, _| None,
                    &[(a.clone(), b.clone(), Ohms(*ohms))],
                )?;
                self.replace_rc(idx, rebuilt)?;
                Ok(vec![NetId(idx)])
            }
        }
    }

    fn replace_rc(&mut self, idx: usize, rc: rcnet::RcNet) -> Result<(), EcoError> {
        self.netlist.replace_net_rc(NetId(idx), rc)?;
        let rc = &self.netlist.nets()[idx].rc;
        self.net_hash[idx] = content_hash(rc);
        self.sink_names[idx] = sink_names_of(rc);
        Ok(())
    }

    /// Applies a batch of edits atomically: on any failure the session
    /// is exactly as before. On success the epoch advances and the
    /// pre-edit state is retained as a rollback snapshot.
    pub fn apply(
        &mut self,
        edits: &[EcoEdit],
        est: &WireTimingEstimator,
        generation: u64,
        cache: &PredictionCache,
    ) -> Result<EcoReport, EcoError> {
        if edits.is_empty() {
            return Err(EcoError::BadEdit("empty edit batch".into()));
        }
        self.snapshot();
        match self.apply_inner(edits, est, generation, cache) {
            Ok(report) => Ok(report),
            Err(e) => {
                let snap = self.snapshots.pop_back().expect("snapshot just pushed");
                self.restore(snap);
                Err(e)
            }
        }
    }

    fn apply_inner(
        &mut self,
        edits: &[EcoEdit],
        est: &WireTimingEstimator,
        generation: u64,
        cache: &PredictionCache,
    ) -> Result<EcoReport, EcoError> {
        let t_dirty = Instant::now();
        let mut seeds = Vec::new();
        for edit in edits {
            seeds.extend(self.apply_edit(edit)?);
        }
        let full_retime = generation != self.model_generation;
        let mut dirty = vec![full_retime; self.netlist.nets().len()];
        if !full_retime {
            for seed in seeds {
                for n in self.netlist.downstream_nets(seed) {
                    dirty[n.0] = true;
                }
            }
        }
        let dirty_set_s = t_dirty.elapsed().as_secs_f64();

        let mut stats = self.retime(&dirty, est, generation, cache)?;
        stats.dirty_set_s = dirty_set_s;
        self.epoch += 1;
        let dirty_nets: Vec<String> = dirty
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| self.netlist.nets()[i].rc.name().to_string())
            .collect();
        Ok(EcoReport {
            epoch: self.epoch,
            dirty_nets,
            stats,
            model_generation: generation,
            full_retime,
        })
    }

    /// Rolls the session back to the state it had at `epoch` (a rejected
    /// ECO). Later snapshots are discarded.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownEpoch`] when no snapshot for `epoch` is
    /// retained (too old, or never existed).
    pub fn rollback(&mut self, epoch: u64) -> Result<(), EcoError> {
        let pos = self
            .snapshots
            .iter()
            .position(|s| s.epoch == epoch)
            .ok_or(EcoError::UnknownEpoch(epoch))?;
        let snap = self.snapshots.remove(pos).expect("position just found");
        self.snapshots.truncate(pos);
        self.restore(snap);
        Ok(())
    }

    /// Epochs with retained rollback snapshots, oldest first.
    pub fn snapshot_epochs(&self) -> Vec<u64> {
        self.snapshots.iter().map(|s| s.epoch).collect()
    }

    /// The worst endpoint and design-level counts.
    pub fn timing_summary(&self) -> TimingSummary {
        let mut critical: Option<CriticalEndpoint> = None;
        for (i, ni) in self.netlist.nets().iter().enumerate() {
            let nt = &self.timing[i];
            for (pos, fo) in ni.fanout.iter().enumerate() {
                if fo.is_some() {
                    continue;
                }
                let Some(&(at, slew)) = nt.at_sinks.get(pos) else {
                    continue;
                };
                if critical.as_ref().is_none_or(|c| at.value() > c.arrival) {
                    critical = Some(CriticalEndpoint {
                        net: ni.rc.name().to_string(),
                        sink: self.sink_names[i][pos].clone(),
                        arrival: at.value(),
                        slew: slew.value(),
                    });
                }
            }
        }
        TimingSummary {
            nets: self.netlist.nets().len(),
            gates: self.netlist.gates().len(),
            epoch: self.epoch,
            model_generation: self.model_generation,
            critical,
        }
    }

    /// Per-sink `(pin name, arrival seconds, slew seconds)` for a net.
    pub fn net_timing(&self, net: &str) -> Result<Vec<(String, f64, f64)>, EcoError> {
        let idx = self.net_idx(net)?;
        Ok(self.sink_names[idx]
            .iter()
            .zip(&self.timing[idx].at_sinks)
            .map(|(n, &(at, slew))| (n.clone(), at.value(), slew.value()))
            .collect())
    }

    /// The complete stored per-net timing (oracle tests compare this).
    pub fn all_timing(&self) -> &[NetTiming] {
        &self.timing
    }
}

// Manual impl to avoid dumping whole netlists into logs.
impl std::fmt::Debug for DesignSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignSession")
            .field("name", &self.name)
            .field("nets", &self.netlist.nets().len())
            .field("gates", &self.netlist.gates().len())
            .field("epoch", &self.epoch)
            .field("model_generation", &self.model_generation)
            .finish()
    }
}
