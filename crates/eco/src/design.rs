//! Turning a design description into a timed gate netlist.
//!
//! Two front doors, mirroring `/v1/predict`'s input modes:
//!
//! * **netgen spec** — a paper-roster design name plus scale/seed. Nets
//!   come from [`netgen::generate_design`]; gates are stitched over them
//!   deterministically (seeded splitmix64): early nets become primary
//!   inputs, every later net is driven by a gate whose inputs are drawn
//!   from still-open fanout pins of earlier nets. The result is a DAG
//!   with realistic fanout for the incremental engine to chew on.
//! * **multi-net SPEF** — instances are recovered from pin names
//!   (`inst:pin`): the net whose source is `u2:Z` is driven by the same
//!   instance that loads `u2:A` on another net. Undriven nets become
//!   primary inputs; cells are assigned by input count.

use crate::EcoError;
use rcnet::RcNet;
use sta::cells::{Cell, CellLibrary};
use sta::netlist::{NetId, Netlist};
use std::collections::HashMap;

/// Deterministic splitmix64 stream for gate stitching.
pub(crate) fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn one_input_cell(lib: &CellLibrary, r: u64) -> Cell {
    const NAMES: [&str; 5] = ["BUF_X1", "BUF_X2", "BUF_X4", "INV_X1", "INV_X2"];
    lib.cell(NAMES[(r % NAMES.len() as u64) as usize])
        .expect("builtin cell")
        .clone()
}

fn two_input_cell(lib: &CellLibrary, r: u64) -> Cell {
    const NAMES: [&str; 4] = ["NAND2_X1", "NAND2_X2", "NOR2_X1", "NOR2_X2"];
    lib.cell(NAMES[(r % NAMES.len() as u64) as usize])
        .expect("builtin cell")
        .clone()
}

/// Stitches `nets` into a gate netlist. Roughly one net in eight is a
/// primary input; each remaining net is driven by a 1- or 2-input gate
/// wired to open fanout pins of already-placed nets.
pub fn stitch_netlist(nets: Vec<RcNet>, seed: u64) -> Result<Netlist, EcoError> {
    if nets.is_empty() {
        return Err(EcoError::BadDesign("design has no nets".into()));
    }
    let lib = CellLibrary::builtin();
    let mut rng = seed ^ 0x5eed_c0de_1234_abcd;
    let mut nl = Netlist::new();
    let mut open: Vec<(NetId, usize)> = Vec::new();
    let n_pi = (nets.len() / 8).max(1);
    for (i, net) in nets.into_iter().enumerate() {
        let sink_count = net.sinks().len();
        if i < n_pi || open.is_empty() {
            let id = nl.add_primary_input(net);
            open.extend((0..sink_count).map(|p| (id, p)));
            continue;
        }
        let want = if open.len() >= 2 && mix(&mut rng).is_multiple_of(3) { 2 } else { 1 };
        let mut pins = Vec::with_capacity(want);
        for _ in 0..want {
            let pick = (mix(&mut rng) % open.len() as u64) as usize;
            pins.push(open.swap_remove(pick));
        }
        let cell = if pins.len() == 2 {
            two_input_cell(&lib, mix(&mut rng))
        } else {
            one_input_cell(&lib, mix(&mut rng))
        };
        let (_, out) = nl.add_gate(cell, &pins, net)?;
        open.extend((0..sink_count).map(|p| (out, p)));
    }
    Ok(nl)
}

/// Builds a netlist from a paper-roster design name (case-insensitive),
/// scaled to `scale` of its paper net count, seeded by `seed`.
pub fn from_netgen(name: &str, scale: f64, seed: u64) -> Result<Netlist, EcoError> {
    if scale <= 0.0 || !scale.is_finite() {
        return Err(EcoError::BadDesign(format!("bad scale {scale}")));
    }
    let spec = netgen::paper_roster()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| EcoError::BadDesign(format!("unknown design `{name}`")))?;
    let cfg = netgen::NetConfig::default();
    let design = netgen::generate_design(&spec, scale, seed, cfg);
    stitch_netlist(design.nets, seed)
}

/// The instance prefix of a pin name (`u2:A` → `u2`), if any.
fn instance_of(pin: &str) -> Option<&str> {
    pin.rsplit_once(':').map(|(inst, _)| inst)
}

/// Builds a netlist from a multi-net SPEF document: instances stitched
/// by pin-name prefix, cells assigned by input count (1 → `BUF_X2`,
/// otherwise `NAND2_X1`), undriven nets as primary inputs.
pub fn from_spef(text: &str) -> Result<Netlist, EcoError> {
    let doc = rcnet::spef::parse(text).map_err(|e| EcoError::BadDesign(e.to_string()))?;
    if doc.nets.is_empty() {
        return Err(EcoError::BadDesign("SPEF has no nets".into()));
    }
    let lib = CellLibrary::builtin();
    let nets = doc.nets;

    // Which instance drives each net, and which nets each instance loads.
    let mut driver_inst: Vec<Option<String>> = Vec::with_capacity(nets.len());
    let mut inst_output: HashMap<String, usize> = HashMap::new();
    for (i, net) in nets.iter().enumerate() {
        let src = &net.node(net.source()).name;
        let inst = instance_of(src).map(str::to_string);
        if let Some(ref inst) = inst {
            if inst_output.insert(inst.clone(), i).is_some() {
                return Err(EcoError::BadDesign(format!(
                    "instance `{inst}` drives more than one net"
                )));
            }
        }
        driver_inst.push(inst);
    }
    // inst -> [(input net, sink pos)]
    let mut inst_inputs: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for (i, net) in nets.iter().enumerate() {
        for (pos, &sid) in net.sinks().iter().enumerate() {
            if let Some(inst) = instance_of(&net.node(sid).name) {
                if inst_output.contains_key(inst) {
                    inst_inputs.entry(inst.to_string()).or_default().push((i, pos));
                }
            }
        }
    }

    // Kahn over nets: a net is ready when its driver's input nets are
    // all placed; driverless (or input-less-driver) nets are PIs.
    let mut placed: Vec<Option<NetId>> = vec![None; nets.len()];
    let mut nl = Netlist::new();
    let mut nets: Vec<Option<RcNet>> = nets.into_iter().map(Some).collect();
    let mut progress = true;
    let mut remaining = nets.len();
    while remaining > 0 && progress {
        progress = false;
        for i in 0..nets.len() {
            if placed[i].is_some() {
                continue;
            }
            let feeds: Option<&Vec<(usize, usize)>> = driver_inst[i]
                .as_ref()
                .and_then(|inst| inst_inputs.get(inst.as_str()));
            let id = match feeds {
                None => {
                    // No driving instance, or an instance with no known
                    // input pins (e.g. a register output): primary input.
                    nl.add_primary_input(nets[i].take().expect("unplaced net present"))
                }
                Some(pins) => {
                    if !pins.iter().all(|&(n, _)| placed[n].is_some()) {
                        continue;
                    }
                    let wired: Vec<(NetId, usize)> = pins
                        .iter()
                        .map(|&(n, pos)| (placed[n].expect("checked placed"), pos))
                        .collect();
                    let cell = if wired.len() == 1 {
                        lib.cell("BUF_X2").expect("builtin cell").clone()
                    } else {
                        lib.cell("NAND2_X1").expect("builtin cell").clone()
                    };
                    let (_, out) =
                        nl.add_gate(cell, &wired, nets[i].take().expect("unplaced net present"))?;
                    out
                }
            };
            placed[i] = Some(id);
            remaining -= 1;
            progress = true;
        }
    }
    if remaining > 0 {
        return Err(EcoError::BadDesign(
            "SPEF instance graph has a combinational cycle".into(),
        ));
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netgen_design_stitches_into_a_dag() {
        let nl = from_netgen("PCI_BRIDGE", 0.03, 7).unwrap();
        assert!(nl.nets().len() >= 40);
        assert!(!nl.gates().is_empty());
        assert!(!nl.primary_inputs().is_empty());
        // Must be acyclic and fully timeable.
        nl.net_topo_order().unwrap();
        let t = nl
            .propagate(&sta::wire::IdealWire, rcnet::Seconds::from_ps(20.0))
            .unwrap();
        assert_eq!(t.len(), nl.nets().len());
    }

    #[test]
    fn netgen_design_is_deterministic_in_seed() {
        let a = from_netgen("pci_bridge", 0.02, 11).unwrap();
        let b = from_netgen("PCI_BRIDGE", 0.02, 11).unwrap();
        assert_eq!(a.nets().len(), b.nets().len());
        assert_eq!(a.gates().len(), b.gates().len());
        for (x, y) in a.nets().iter().zip(b.nets()) {
            assert_eq!(rcnet::content_hash(&x.rc), rcnet::content_hash(&y.rc));
        }
    }

    #[test]
    fn unknown_design_and_bad_scale_are_rejected() {
        assert!(matches!(from_netgen("NOPE", 1.0, 1), Err(EcoError::BadDesign(_))));
        assert!(matches!(from_netgen("DMA", 0.0, 1), Err(EcoError::BadDesign(_))));
        assert!(matches!(
            from_netgen("DMA", f64::NAN, 1),
            Err(EcoError::BadDesign(_))
        ));
    }

    const CHAIN_SPEF: &str = r#"*SPEF "IEEE 1481-1998"
*DESIGN "chain"
*DELIMITER :
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET na 3.0
*CONN
*I p0:Z O
*I u1:A I
*CAP
1 na:1 1.0
2 u1:A 2.0
*RES
1 p0:Z na:1 10.0
2 na:1 u1:A 20.0
*END
*D_NET nb 2.0
*CONN
*I u1:Z O
*I u2:A I
*CAP
1 u2:A 2.0
*RES
1 u1:Z u2:A 15.0
*END
"#;

    #[test]
    fn spef_instances_stitch_into_gates() {
        let nl = from_spef(CHAIN_SPEF).unwrap();
        assert_eq!(nl.nets().len(), 2);
        assert_eq!(nl.gates().len(), 1);
        assert_eq!(nl.primary_inputs().len(), 1);
        // na (driven by p0, which loads nothing -> PI) feeds gate u1
        // driving nb.
        let t = nl
            .propagate(&sta::wire::IdealWire, rcnet::Seconds::from_ps(20.0))
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn spef_multidriver_instance_is_rejected() {
        let doubled = CHAIN_SPEF.replace("*I u1:Z O", "*I p0:Z O");
        assert!(matches!(from_spef(&doubled), Err(EcoError::BadDesign(_))));
    }
}
