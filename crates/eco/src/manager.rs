//! Named concurrent design sessions under a byte budget.
//!
//! The manager owns every live [`DesignSession`] plus the *shared*
//! [`PredictionCache`] they all probe — content-addressed keys make the
//! cache safe to share across sessions (two sessions holding the same
//! physical net in the same context hit the same entry). When resident
//! sessions exceed the byte budget, least-recently-used sessions are
//! evicted whole; a model hot-reload calls
//! [`SessionManager::invalidate_prediction_cache`] so no session can
//! read a prediction produced by the previous weights.

use crate::cache::{CacheStats, PredictionCache};
use crate::session::DesignSession;
use crate::EcoError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

struct Entry {
    session: Arc<Mutex<DesignSession>>,
    /// Logical access clock value at last touch (monotonic, not wall time).
    last_access: u64,
}

/// Point-in-time manager counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ManagerStats {
    /// Live sessions.
    pub sessions: usize,
    /// Approximate resident bytes across sessions.
    pub session_bytes: usize,
    /// Sessions evicted by the byte budget since start.
    pub evictions: u64,
    /// Shared prediction-cache counters.
    pub cache: CacheStats,
}

struct Inner {
    sessions: HashMap<String, Entry>,
    clock: u64,
    next_id: u64,
    evictions: u64,
}

/// Registry of live design sessions sharing one prediction cache.
pub struct SessionManager {
    inner: Mutex<Inner>,
    cache: Arc<PredictionCache>,
    /// Byte budget across all resident sessions.
    byte_budget: usize,
}

impl SessionManager {
    /// A manager evicting sessions past `session_byte_budget`, with a
    /// shared prediction cache of `cache_byte_budget`.
    pub fn new(session_byte_budget: usize, cache_byte_budget: usize) -> Self {
        SessionManager {
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                clock: 0,
                next_id: 0,
                evictions: 0,
            }),
            cache: Arc::new(PredictionCache::new(8, cache_byte_budget)),
            byte_budget: session_byte_budget.max(1),
        }
    }

    /// The shared prediction cache.
    pub fn cache(&self) -> &Arc<PredictionCache> {
        &self.cache
    }

    /// Registers `session` under `name` (or an auto-assigned `s<N>` id
    /// when `name` is `None`), evicting LRU sessions if the byte budget
    /// overflows. Returns the session id. An existing session with the
    /// same name is replaced.
    pub fn insert(&self, name: Option<String>, session: DesignSession) -> String {
        let mut inner = self.inner.lock().expect("manager lock");
        let id = name.unwrap_or_else(|| {
            inner.next_id += 1;
            format!("s{}", inner.next_id)
        });
        inner.clock += 1;
        let tick = inner.clock;
        inner.sessions.insert(
            id.clone(),
            Entry {
                session: Arc::new(Mutex::new(session)),
                last_access: tick,
            },
        );
        self.evict_over_budget(&mut inner, &id);
        obs::gauge("eco.sessions.live").set(inner.sessions.len() as f64);
        id
    }

    /// Evicts least-recently-used sessions (never `keep`) until the
    /// resident estimate fits the budget.
    fn evict_over_budget(&self, inner: &mut Inner, keep: &str) {
        loop {
            let total: usize = inner
                .sessions
                .values()
                .map(|e| e.session.lock().expect("session lock").approx_bytes())
                .sum();
            if total <= self.byte_budget || inner.sessions.len() <= 1 {
                return;
            }
            let victim = inner
                .sessions
                .iter()
                .filter(|(id, _)| id.as_str() != keep)
                .min_by_key(|(_, e)| e.last_access)
                .map(|(id, _)| id.clone());
            match victim {
                Some(id) => {
                    inner.sessions.remove(&id);
                    inner.evictions += 1;
                    obs::counter("eco.sessions.evicted").inc();
                }
                None => return,
            }
        }
    }

    /// The session registered under `id`.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownSession`] when `id` is not live (never
    /// created, deleted, or evicted).
    pub fn get(&self, id: &str) -> Result<Arc<Mutex<DesignSession>>, EcoError> {
        let mut inner = self.inner.lock().expect("manager lock");
        inner.clock += 1;
        let tick = inner.clock;
        let entry = inner
            .sessions
            .get_mut(id)
            .ok_or_else(|| EcoError::UnknownSession(id.to_string()))?;
        entry.last_access = tick;
        Ok(Arc::clone(&entry.session))
    }

    /// Removes the session registered under `id`.
    ///
    /// # Errors
    ///
    /// [`EcoError::UnknownSession`] when `id` is not live.
    pub fn delete(&self, id: &str) -> Result<(), EcoError> {
        let mut inner = self.inner.lock().expect("manager lock");
        inner
            .sessions
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| EcoError::UnknownSession(id.to_string()))?;
        obs::gauge("eco.sessions.live").set(inner.sessions.len() as f64);
        Ok(())
    }

    /// Live session ids, unordered.
    pub fn ids(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("manager lock");
        inner.sessions.keys().cloned().collect()
    }

    /// Drops every cached prediction. Call on model hot-reload: the new
    /// generation also changes every cache key, so this primarily
    /// reclaims bytes dead to the old generation.
    pub fn invalidate_prediction_cache(&self) {
        self.cache.invalidate_all();
    }

    /// Current counters.
    pub fn stats(&self) -> ManagerStats {
        let inner = self.inner.lock().expect("manager lock");
        let session_bytes = inner
            .sessions
            .values()
            .map(|e| e.session.lock().expect("session lock").approx_bytes())
            .sum();
        ManagerStats {
            sessions: inner.sessions.len(),
            session_bytes,
            evictions: inner.evictions,
            cache: self.cache.stats(),
        }
    }
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SessionManager")
            .field("sessions", &s.sessions)
            .field("session_bytes", &s.session_bytes)
            .field("byte_budget", &self.byte_budget)
            .finish()
    }
}
