//! The ECO edit vocabulary and RC-network rebuilding.
//!
//! Edits address nets and nodes by *name* — the stable handles an
//! optimizer holds — and map onto the netlist/RC mutations the session
//! applies. [`RcNet`] is immutable after build (derived adjacency and
//! paths are shared), so value and topology edits rebuild the net
//! through [`rcnet::RcNetBuilder`], which re-validates connectivity and
//! sign constraints for free: a malformed ECO is rejected before it
//! touches session state.

use crate::EcoError;
use rcnet::{Farads, NodeKind, Ohms, RcNet, RcNetBuilder};

/// One engineering change order against a loaded design.
#[derive(Debug, Clone, PartialEq)]
pub enum EcoEdit {
    /// Swap the cell driving `net` (a driver resize: e.g. `BUF_X1` →
    /// `BUF_X4`). The net must be gate-driven, not a primary input.
    ResizeDriver {
        /// Net whose driver gate is resized.
        net: String,
        /// Replacement library cell name.
        cell: String,
    },
    /// Override the effective load capacitance seen at one sink pin of
    /// `net` (a downstream re-layout the session does not model
    /// structurally).
    SetSinkLoad {
        /// The edited net.
        net: String,
        /// Sink node name on that net.
        sink: String,
        /// New effective load, femtofarads.
        ceff_ff: f64,
    },
    /// Insert a buffer in front of one sink pin of `net`: the pin is
    /// rewired through a new `cell` gate driving a short stub wire.
    InsertBuffer {
        /// The edited net.
        net: String,
        /// Sink node name whose pin gets buffered.
        sink: String,
        /// Buffer library cell name.
        cell: String,
    },
    /// Change the value of the resistor between two named nodes of `net`.
    SetResistance {
        /// The edited net.
        net: String,
        /// One endpoint node name.
        a: String,
        /// Other endpoint node name.
        b: String,
        /// New resistance, ohms.
        ohms: f64,
    },
    /// Change the ground capacitance of a named node of `net`.
    SetCap {
        /// The edited net.
        net: String,
        /// The node name.
        node: String,
        /// New ground capacitance, femtofarads.
        ff: f64,
    },
    /// Add a new resistor between two existing nodes of `net` (a
    /// topology change: closes a loop, as post-route metal fill or a
    /// redundant via would).
    AddResistor {
        /// The edited net.
        net: String,
        /// One endpoint node name.
        a: String,
        /// Other endpoint node name.
        b: String,
        /// Resistance, ohms.
        ohms: f64,
    },
}

impl EcoEdit {
    /// The name of the net this edit targets.
    pub fn net(&self) -> &str {
        match self {
            EcoEdit::ResizeDriver { net, .. }
            | EcoEdit::SetSinkLoad { net, .. }
            | EcoEdit::InsertBuffer { net, .. }
            | EcoEdit::SetResistance { net, .. }
            | EcoEdit::SetCap { net, .. }
            | EcoEdit::AddResistor { net, .. } => net,
        }
    }

    /// A short stable tag for logs and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            EcoEdit::ResizeDriver { .. } => "resize_driver",
            EcoEdit::SetSinkLoad { .. } => "set_sink_load",
            EcoEdit::InsertBuffer { .. } => "insert_buffer",
            EcoEdit::SetResistance { .. } => "set_resistance",
            EcoEdit::SetCap { .. } => "set_cap",
            EcoEdit::AddResistor { .. } => "add_resistor",
        }
    }
}

/// Rebuilds `net` with per-element overrides applied. `edit_cap(name,
/// old)` and `edit_res(a, b, old)` return a replacement value or `None`
/// to keep the original; `extra_res` appends new resistors by node name.
pub(crate) fn rebuild_net(
    net: &RcNet,
    mut edit_cap: impl FnMut(&str, Farads) -> Option<Farads>,
    mut edit_res: impl FnMut(&str, &str, Ohms) -> Option<Ohms>,
    extra_res: &[(String, String, Ohms)],
) -> Result<RcNet, EcoError> {
    let mut b = RcNetBuilder::new(net.name());
    for (_, node) in net.iter_nodes() {
        let cap = edit_cap(&node.name, node.cap).unwrap_or(node.cap);
        match node.kind {
            NodeKind::Source => b.source(node.name.clone(), cap),
            NodeKind::Sink => b.sink(node.name.clone(), cap),
            NodeKind::Internal => b.internal(node.name.clone(), cap),
        };
    }
    for (_, e) in net.iter_edges() {
        let (na, nb) = (&net.node(e.a).name, &net.node(e.b).name);
        let res = edit_res(na, nb, e.res).unwrap_or(e.res);
        let (ia, ib) = (
            b.node_by_name(na).expect("node just added"),
            b.node_by_name(nb).expect("node just added"),
        );
        b.resistor(ia, ib, res);
    }
    for (na, nb, res) in extra_res {
        let ia = b.node_by_name(na).ok_or_else(|| EcoError::UnknownNode {
            net: net.name().to_string(),
            node: na.clone(),
        })?;
        let ib = b.node_by_name(nb).ok_or_else(|| EcoError::UnknownNode {
            net: net.name().to_string(),
            node: nb.clone(),
        })?;
        b.resistor(ia, ib, *res);
    }
    for c in net.couplings() {
        let v = b
            .node_by_name(&net.node(c.node).name)
            .expect("node just added");
        b.coupling(v, c.aggressor.clone(), c.cap);
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcnet::content_hash;

    fn fixture() -> RcNet {
        let mut b = RcNetBuilder::new("n");
        let s = b.source("n:z", Farads(1e-15));
        let m = b.internal("n:1", Farads(2e-15));
        let k = b.sink("u1:A", Farads(3e-15));
        b.resistor(s, m, Ohms(10.0));
        b.resistor(m, k, Ohms(20.0));
        b.coupling(m, "agg:0", Farads(0.4e-15));
        b.build().unwrap()
    }

    #[test]
    fn rebuild_without_overrides_preserves_content() {
        let net = fixture();
        let copy = rebuild_net(&net, |_, _| None, |_, _, _| None, &[]).unwrap();
        assert_eq!(content_hash(&copy), content_hash(&net));
        assert_eq!(copy.sinks().len(), net.sinks().len());
    }

    #[test]
    fn cap_and_res_overrides_apply() {
        let net = fixture();
        let out = rebuild_net(
            &net,
            |name, _| (name == "n:1").then_some(Farads(9e-15)),
            |a, b, _| (a == "n:1" && b == "u1:A" || a == "u1:A" && b == "n:1")
                .then_some(Ohms(99.0)),
            &[],
        )
        .unwrap();
        assert_ne!(content_hash(&out), content_hash(&net));
        let m = out.node_by_name("n:1").unwrap();
        assert_eq!(out.node(m).cap, Farads(9e-15));
        assert!((out.total_res().value() - 109.0).abs() < 1e-9);
    }

    #[test]
    fn extra_resistor_closes_a_loop() {
        let net = fixture();
        assert!(net.is_tree());
        let out = rebuild_net(
            &net,
            |_, _| None,
            |_, _, _| None,
            &[("n:z".to_string(), "u1:A".to_string(), Ohms(50.0))],
        )
        .unwrap();
        assert!(!out.is_tree());
        assert_eq!(out.loop_count(), 1);
    }

    #[test]
    fn unknown_extra_endpoint_is_rejected() {
        let net = fixture();
        let err = rebuild_net(
            &net,
            |_, _| None,
            |_, _, _| None,
            &[("n:z".to_string(), "ghost".to_string(), Ohms(1.0))],
        );
        assert!(matches!(err, Err(EcoError::UnknownNode { .. })));
    }
}
