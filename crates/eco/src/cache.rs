//! Sharded, byte-budgeted LRU cache of per-net timing predictions.
//!
//! Keys are content-addressed: the canonical net hash
//! ([`rcnet::hash::content_hash`]) folded with the driver/load context
//! hash and the model generation. Content addressing means an ECO that
//! is later reverted, or two sessions holding the same design, hit the
//! same entries — an unchanged net costs a shard probe, not a model
//! inference. Including the model generation in the key means entries
//! from a previous model can never match after a hot-reload; the serve
//! layer additionally calls [`PredictionCache::invalidate_all`] on
//! reload so dead generations do not squat the byte budget.
//!
//! Values remember their sink names. A probe whose sink names disagree
//! with the caller's net is treated as a miss (and the entry dropped):
//! a 64-bit collision must never misalign timing onto the wrong pins.

use gnntrans::PathEstimate;
use rcnet::{Fnv1a, Seconds};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached per-net prediction: `(sink name, slew, delay)` per wire
/// path, in `rc.paths()` (= sink) order.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPaths {
    /// Per-sink predictions: name, slew seconds, delay seconds.
    pub sinks: Vec<(String, f64, f64)>,
}

impl CachedPaths {
    /// Builds a cache value from a net's sink names and its estimates.
    pub fn new(sink_names: &[String], estimates: &[PathEstimate]) -> Self {
        CachedPaths {
            sinks: sink_names
                .iter()
                .zip(estimates)
                .map(|(n, e)| (n.clone(), e.slew.value(), e.delay.value()))
                .collect(),
        }
    }

    /// True when the entry's sink names match `sink_names` exactly.
    pub fn matches(&self, sink_names: &[String]) -> bool {
        self.sinks.len() == sink_names.len()
            && self.sinks.iter().zip(sink_names).all(|((n, _, _), m)| n == m)
    }

    /// The per-path `(slew, delay)` pairs in sink order.
    pub fn timings(&self) -> impl Iterator<Item = (Seconds, Seconds)> + '_ {
        self.sinks.iter().map(|&(_, s, d)| (Seconds(s), Seconds(d)))
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sinks
                .iter()
                .map(|(n, _, _)| n.len() + std::mem::size_of::<(String, f64, f64)>())
                .sum::<usize>()
    }
}

/// Folds the three key components into the cache's 64-bit key space.
pub fn cache_key(net_hash: u64, ctx_hash: u64, model_generation: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"eco.key.v1")
        .write_u64(net_hash)
        .write_u64(ctx_hash)
        .write_u64(model_generation);
    h.finish()
}

/// A point-in-time view of cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Probes that returned a usable entry.
    pub hits: u64,
    /// Probes that found nothing (or a collision-mismatched entry).
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries dropped to stay inside the byte budget.
    pub evictions: u64,
    /// Wholesale invalidations (model hot-reloads).
    pub invalidations: u64,
    /// Approximate resident bytes.
    pub bytes: u64,
    /// Resident entries.
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction over all probes so far (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU bookkeeping: entries in a slab threaded onto an intrusive
/// most-recent-first list.
struct Slot {
    key: u64,
    value: Arc<CachedPaths>,
    bytes: usize,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

struct Shard {
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    budget: usize,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            budget,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.slots[i].prev, self.slots[i].next);
        if p == NIL {
            self.head = n;
        } else {
            self.slots[p].next = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.slots[n].prev = p;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Removes slot `i` entirely; returns its byte size.
    fn remove(&mut self, i: usize) -> usize {
        self.unlink(i);
        let key = self.slots[i].key;
        self.map.remove(&key);
        let b = self.slots[i].bytes;
        self.bytes -= b;
        self.slots[i].value = Arc::new(CachedPaths { sinks: Vec::new() });
        self.free.push(i);
        b
    }

    /// Evicts from the tail until inside budget; returns evictions made.
    fn enforce_budget(&mut self) -> u64 {
        let mut evicted = 0;
        while self.bytes > self.budget && self.tail != NIL {
            self.remove(self.tail);
            evicted += 1;
        }
        evicted
    }
}

/// The sharded LRU prediction cache. All methods are `&self`; shard
/// mutexes make it safe to share behind an `Arc` across sessions and
/// worker threads.
pub struct PredictionCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    hits_ctr: obs::Counter,
    misses_ctr: obs::Counter,
    evictions_ctr: obs::Counter,
    invalidations_ctr: obs::Counter,
    bytes_gauge: obs::Gauge,
    entries_gauge: obs::Gauge,
}

impl PredictionCache {
    /// A cache with `shards` shards splitting `byte_budget` evenly.
    /// Shard count is clamped to at least 1 and rounded to a power of
    /// two so key→shard mapping is a mask.
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = (byte_budget / shards).max(1024);
        PredictionCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            hits_ctr: obs::counter("eco.cache.hits"),
            misses_ctr: obs::counter("eco.cache.misses"),
            evictions_ctr: obs::counter("eco.cache.evictions"),
            invalidations_ctr: obs::counter("eco.cache.invalidations"),
            bytes_gauge: obs::gauge("eco.cache.bytes"),
            entries_gauge: obs::gauge("eco.cache.entries"),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits: the FNV fold mixes well there, and the low bits
        // already picked the HashMap bucket.
        let i = (key >> 48) as usize & (self.shards.len() - 1);
        &self.shards[i]
    }

    /// Probes for `key`. `sink_names` guards against 64-bit collisions:
    /// an entry whose sink names disagree is dropped and reported as a
    /// miss.
    pub fn get(&self, key: u64, sink_names: &[String]) -> Option<Arc<CachedPaths>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if let Some(&i) = shard.map.get(&key) {
            if shard.slots[i].value.matches(sink_names) {
                shard.touch(i);
                let v = Arc::clone(&shard.slots[i].value);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hits_ctr.inc();
                return Some(v);
            }
            shard.remove(i);
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_ctr.inc();
        None
    }

    /// Inserts (or replaces) the entry for `key`, then enforces the
    /// shard's byte budget.
    pub fn insert(&self, key: u64, value: Arc<CachedPaths>) {
        let bytes = value.approx_bytes();
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if let Some(&i) = shard.map.get(&key) {
            shard.remove(i);
        }
        let slot = Slot {
            key,
            value,
            bytes,
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(i) = shard.free.pop() {
            shard.slots[i] = slot;
            i
        } else {
            shard.slots.push(slot);
            shard.slots.len() - 1
        };
        shard.map.insert(key, i);
        shard.bytes += bytes;
        shard.push_front(i);
        let evicted = shard.enforce_budget();
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.evictions_ctr.add(evicted);
        }
        self.publish_gauges();
    }

    /// Drops every entry (model hot-reload). Generation-keyed entries
    /// could never hit again anyway; this returns their bytes at once.
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            let budget = s.budget;
            *s = Shard::new(budget);
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.invalidations_ctr.inc();
        self.publish_gauges();
    }

    fn publish_gauges(&self) {
        let (mut bytes, mut entries) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard poisoned");
            bytes += s.bytes as u64;
            entries += s.map.len() as u64;
        }
        self.bytes_gauge.set(bytes as f64);
        self.entries_gauge.set(entries as f64);
    }

    /// A consistent-enough snapshot of the counters and residency.
    pub fn stats(&self) -> CacheStats {
        let (mut bytes, mut entries) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard poisoned");
            bytes += s.bytes as u64;
            entries += s.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }
}

impl std::fmt::Debug for PredictionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(names: &[&str]) -> Arc<CachedPaths> {
        Arc::new(CachedPaths {
            sinks: names.iter().map(|n| (n.to_string(), 1e-12, 2e-12)).collect(),
        })
    }

    fn names(ns: &[&str]) -> Vec<String> {
        ns.iter().map(|n| n.to_string()).collect()
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = PredictionCache::new(4, 1 << 20);
        let key = cache_key(1, 2, 3);
        assert!(c.get(key, &names(&["a"])).is_none());
        c.insert(key, entry(&["a"]));
        let got = c.get(key, &names(&["a"])).expect("hit");
        assert_eq!(got.sinks[0].0, "a");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn generation_partitions_the_key_space() {
        let c = PredictionCache::new(1, 1 << 20);
        c.insert(cache_key(7, 8, 1), entry(&["a"]));
        assert!(c.get(cache_key(7, 8, 2), &names(&["a"])).is_none());
        assert!(c.get(cache_key(7, 8, 1), &names(&["a"])).is_some());
    }

    #[test]
    fn sink_name_mismatch_is_a_miss_and_drops_the_entry() {
        let c = PredictionCache::new(1, 1 << 20);
        let key = cache_key(1, 1, 1);
        c.insert(key, entry(&["a", "b"]));
        assert!(c.get(key, &names(&["a", "c"])).is_none());
        // The poisoned entry is gone entirely.
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // Budget fits only a couple of entries per shard.
        let c = PredictionCache::new(1, 1024);
        let e = entry(&["sink_with_a_longish_name"]);
        let per = e.approx_bytes();
        let fits = 1024 / per;
        for i in 0..(fits as u64 + 3) {
            c.insert(cache_key(i, 0, 1), Arc::clone(&e));
        }
        let s = c.stats();
        assert!(s.evictions >= 3, "expected evictions, got {s:?}");
        assert!(s.bytes <= 1024);
        // Oldest key is gone, newest survives.
        assert!(c.get(cache_key(0, 0, 1), &names(&["sink_with_a_longish_name"])).is_none());
        assert!(c
            .get(cache_key(fits as u64 + 2, 0, 1), &names(&["sink_with_a_longish_name"]))
            .is_some());
    }

    #[test]
    fn invalidate_all_clears_every_shard() {
        let c = PredictionCache::new(8, 1 << 20);
        for i in 0..64u64 {
            c.insert(cache_key(i, i, 1), entry(&["a"]));
        }
        assert!(c.stats().entries > 0);
        c.invalidate_all();
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.invalidations, 1);
        assert!(c.get(cache_key(5, 5, 1), &names(&["a"])).is_none());
    }

    #[test]
    fn lru_touch_on_get_protects_hot_entries() {
        let c = PredictionCache::new(1, 1024);
        let e = entry(&["sink_with_a_longish_name"]);
        let per = e.approx_bytes();
        let fits = (1024 / per) as u64;
        for i in 0..fits {
            c.insert(cache_key(i, 0, 1), Arc::clone(&e));
        }
        // Touch the oldest, then overflow by one: the *second*-oldest dies.
        let nm = names(&["sink_with_a_longish_name"]);
        assert!(c.get(cache_key(0, 0, 1), &nm).is_some());
        c.insert(cache_key(fits, 0, 1), Arc::clone(&e));
        assert!(c.get(cache_key(0, 0, 1), &nm).is_some());
        assert!(c.get(cache_key(1, 0, 1), &nm).is_none());
    }
}
