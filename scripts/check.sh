#!/usr/bin/env bash
# Full local gate: release build, tests, and warning-free clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# Loopback smoke test of the inference server: ephemeral port, one SPEF
# predict (200 + finite slew/delay), /healthz + /metrics, a hot-reload
# under concurrent load, and a clean drain. Exit code is the verdict.
./target/release/serve --smoke
