#!/usr/bin/env bash
# Full local gate: release build, tests, and warning-free clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace: the root package is only the facade — without it the
# bench/serve binaries the smoke steps below run would go stale.
cargo build --release --workspace
cargo test -q --workspace

# Parallel-determinism gates: dataset builds and accumulated training
# must be bit-identical to serial no matter the pool size. The tests
# flip the in-process thread count themselves; PAR_THREADS=4 also
# exercises env resolution on the way in, and PAR_FORCE_POOL=1 keeps
# pool scheduling exercised even on 1-core CI hosts (where par_map
# otherwise clamps to the serial path).
PAR_THREADS=4 PAR_FORCE_POOL=1 cargo test -q -p gnntrans --test par_determinism
PAR_THREADS=4 PAR_FORCE_POOL=1 cargo test -q -p gnn --test par_determinism

# Packed-training determinism gate: an epoch whose chunks split into
# multiple packs must be bit-identical at 1 vs 4 pool threads.
PAR_THREADS=4 PAR_FORCE_POOL=1 cargo test -q -p gnn --test packed_determinism

cargo clippy --workspace --all-targets -- -D warnings

# Compute-layer smoke: kernels + 1-vs-N pool runs at a reduced step
# count; writes a throwaway report and fails on any kernel/pool panic.
cargo run -q -p bench --release --bin compute -- --steps 2 \
    --out target/BENCH_compute_smoke.json

# Inference-engine smoke: tape vs tape-free and packed vs per-graph at
# reduced sizes; asserts the tape-free/packed output matches the tape
# forward within 1e-6 relative error on every path.
cargo run -q -p bench --release --bin infer -- --smoke \
    --out target/BENCH_infer_smoke.json

# Training-engine smoke: packed-vs-tape gradient parity (asserted at
# 1e-6) plus a short packed-training run at reduced sizes — the 2-step
# epoch exercise of the analytic backward through the packed kernels.
cargo run -q -p bench --release --bin train -- --smoke \
    --out target/BENCH_train_smoke.json

# Sparse-solver gates: the dense-vs-sparse golden agreement tests, then
# the rcsim bench smoke (small sizes, both backends), which asserts the
# backends agree within 1e-9 s on every measured net.
cargo test -q -p rcsim --release --test sparse_vs_dense
cargo run -q -p bench --release --bin rcsim -- --smoke \
    --out target/BENCH_rcsim_smoke.json

# Loopback smoke test of the inference server: ephemeral port, one SPEF
# predict (200 + finite slew/delay), /healthz + /metrics, the tracing
# round-trip (predict's x-trace-id findable in /v1/traces with all six
# stages) + validated /metrics?format=prometheus exposition, a
# hot-reload under concurrent load, and a clean drain. Exit code is the
# verdict.
./target/release/serve --smoke

# Trace-analyzer smoke: in-process server under traffic, live /v1/traces
# fetch, and the stage-attribution report; fails if more than 5% of
# request wall time is unattributed to a stage.
./target/release/obs-trace --smoke

# Incremental ECO engine smoke: small designs, a random single-edit
# stream through a warm session, then the correctness gate — the
# incrementally-maintained timing must equal a cold full re-time of the
# same final design to 1e-9 s.
cargo run -q -p bench --release --bin eco -- --smoke \
    --out target/BENCH_eco_smoke.json
