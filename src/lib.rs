//! Facade crate for the GNNTrans wire-timing reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can say `use wire_timing::...`. See the individual
//! crates for the real APIs:
//!
//! * [`rcnet`] — parasitic RC networks, wire paths, SPEF I/O
//! * [`elmore`] — analytical delay/slew metrics (Elmore, moments, D2M)
//! * [`rcsim`] — golden transient simulator with SI coupling
//! * [`tensor`] — minimal reverse-mode autograd
//! * [`gnn`] — GNNTrans and the baseline graph-learning models
//! * [`netgen`] — synthetic parasitics and benchmark designs
//! * [`sta`] — NLDM cell library and arrival-time propagation
//! * [`gnntrans`] — the end-to-end wire-timing estimator (the paper's
//!   contribution)
//! * [`numeric`] — linear algebra and statistics substrate

pub use elmore;
pub use gnn;
pub use gnntrans;
pub use netgen;
pub use numeric;
pub use par;
pub use rcnet;
pub use rcsim;
pub use sta;
pub use tensor;
