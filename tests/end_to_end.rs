//! End-to-end integration: generate → label → train → predict → persist,
//! across every crate boundary.

use gnntrans::dataset::DatasetBuilder;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use gnntrans::metrics::evaluate_estimator;
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::{RcNet, Seconds};
use sta::cells::CellLibrary;
use sta::path::{Stage, TimingPath};
use sta::WireTimer;

fn nets(count: usize, seed: u64) -> Vec<RcNet> {
    let cfg = NetConfig {
        nodes_min: 5,
        nodes_max: 18,
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed, cfg);
    (0..count)
        .map(|i| g.net(format!("n{i}"), i % 3 == 0))
        .collect()
}

fn quick_config() -> EstimatorConfig {
    let mut cfg = EstimatorConfig::plan_b_small();
    cfg.hidden = 16;
    cfg.epochs = 25;
    cfg
}

#[test]
fn estimator_generalizes_to_unseen_nets() {
    let all = nets(70, 5);
    let (train, test) = all.split_at(55);
    let mut builder = DatasetBuilder::new(1);
    let data = builder.build(train).expect("train data");

    let mut est = WireTimingEstimator::new(&quick_config(), 11);
    let report = est.train(&data).expect("training");
    assert!(report.final_loss() < report.epoch_losses[0]);

    // Unseen-net accuracy must beat the predict-the-mean baseline by a
    // wide margin (full experiments reach R² > 0.9; this is a smoke
    // threshold that must survive small budgets).
    let test_samples: Vec<_> = test
        .iter()
        .map(|n| builder.sample_for(n).expect("labelled test sample"))
        .collect();
    let result = evaluate_estimator(&est, &test_samples, false).expect("evaluation");
    assert!(result.r2_delay > 0.6, "delay R² {}", result.r2_delay);
    assert!(result.r2_slew > 0.6, "slew R² {}", result.r2_slew);
    assert!(result.paths > 10);
}

#[test]
fn estimator_round_trips_through_disk() {
    let train = nets(30, 9);
    let mut builder = DatasetBuilder::new(1);
    let data = builder.build(&train).expect("train data");
    let mut est = WireTimingEstimator::new(&quick_config(), 3);
    est.train(&data).expect("training");

    let path = std::env::temp_dir().join("wire_timing_e2e_model.bin");
    est.save(&path).expect("save");
    let loaded = WireTimingEstimator::load(&path).expect("load");
    let probe = &train[0];
    let ctx = builder.context_for(probe);
    assert_eq!(
        est.predict_net(probe, &ctx).expect("original predicts"),
        loaded.predict_net(probe, &ctx).expect("loaded predicts")
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn estimator_drives_arrival_time_computation() {
    let train = nets(30, 13);
    let mut builder = DatasetBuilder::new(1);
    let data = builder.build(&train).expect("train data");
    let mut est = WireTimingEstimator::new(&quick_config(), 3);
    est.train(&data).expect("training");

    let lib = CellLibrary::builtin();
    let path = TimingPath::new(vec![
        Stage {
            cell: lib.cell("BUF_X2").expect("builtin").clone(),
            net: train[0].clone(),
            sink_path: 0,
        },
        Stage {
            cell: lib.cell("INV_X1").expect("builtin").clone(),
            net: train[1].clone(),
            sink_path: 0,
        },
    ]);
    let arrival = path
        .arrival(&est, Seconds::from_ps(20.0))
        .expect("arrival through the estimator");
    assert!(arrival.arrival.value() > 0.0);
    assert_eq!(arrival.stages.len(), 2);
    assert!(arrival.gate_total.value() > 0.0);
    // Gate delays dominate wire delays at these net sizes.
    assert!(arrival.gate_total > arrival.wire_total);
}

#[test]
fn wire_timer_trait_objects_are_interchangeable() {
    let train = nets(25, 17);
    let mut builder = DatasetBuilder::new(1);
    let data = builder.build(&train).expect("train data");
    let mut est = WireTimingEstimator::new(&quick_config(), 3);
    est.train(&data).expect("training");

    let timers: Vec<(&str, &dyn WireTimer)> = vec![
        ("estimator", &est),
        ("ideal", &sta::wire::IdealWire),
    ];
    for (name, timer) in timers {
        let (d, s) = timer
            .path_timing(&train[2], 0, Seconds::from_ps(15.0))
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(d.value() >= 0.0, "{name} delay");
        assert!(s.value() >= 0.0, "{name} slew");
    }
}
