//! Property-based invariants over randomly generated RC networks,
//! spanning `rcnet`, `elmore`, `netgen` and the SPEF round-trip.

use elmore::WireAnalysis;
use netgen::nets::{NetConfig, NetGenerator};
use proptest::prelude::*;
use rcnet::spef::{parse, write, SpefHeader};

fn generated_net(seed: u64, nontree: bool) -> rcnet::RcNet {
    let cfg = NetConfig {
        nodes_min: 4,
        nodes_max: 28,
        ..Default::default()
    };
    NetGenerator::new(seed, cfg).net(format!("pp{seed}"), nontree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_generated_net_is_structurally_sound(seed in 0u64..10_000, nontree in any::<bool>()) {
        let net = generated_net(seed, nontree);
        // Exactly one source, >= 1 sink, connectivity enforced by build().
        prop_assert_eq!(net.is_tree(), !nontree);
        prop_assert!(net.node_count() >= 4);
        prop_assert!(!net.sinks().is_empty());
        // Every path starts at the source and ends at its own sink.
        for p in net.paths() {
            prop_assert_eq!(p.nodes.first().copied(), Some(net.source()));
            prop_assert_eq!(p.nodes.last().copied(), Some(p.sink));
            prop_assert_eq!(p.edges.len() + 1, p.nodes.len());
            // No repeated nodes on a shortest path.
            let mut seen = p.nodes.clone();
            seen.sort();
            seen.dedup();
            prop_assert_eq!(seen.len(), p.nodes.len());
        }
    }

    #[test]
    fn spef_round_trip_is_lossless_enough(seed in 0u64..10_000, nontree in any::<bool>()) {
        let net = generated_net(seed, nontree);
        let text = write(&SpefHeader::default(), std::slice::from_ref(&net));
        let doc = parse(&text).expect("writer output must parse");
        prop_assert_eq!(doc.nets.len(), 1);
        let rt = &doc.nets[0];
        prop_assert_eq!(rt.node_count(), net.node_count());
        prop_assert_eq!(rt.edge_count(), net.edge_count());
        prop_assert_eq!(rt.sinks().len(), net.sinks().len());
        prop_assert!((rt.total_cap().value() - net.total_cap().value()).abs() < 1e-22);
        prop_assert!((rt.total_res().value() - net.total_res().value()).abs() < 1e-6);
        // Wire-path delays derived from the round-tripped net agree.
        let wa_a = WireAnalysis::new(&net).expect("analysis");
        let wa_b = WireAnalysis::new(rt).expect("analysis");
        for (pa, pb) in net.paths().iter().zip(rt.paths()) {
            let da = wa_a.path_elmore(pa).value();
            let db = wa_b.path_elmore(pb).value();
            prop_assert!((da - db).abs() <= 1e-6 * da.abs() + 1e-24);
        }
    }

    #[test]
    fn moment_invariants_hold(seed in 0u64..10_000, nontree in any::<bool>()) {
        let net = generated_net(seed, nontree);
        let wa = WireAnalysis::new(&net).expect("analysis");
        let m = wa.moments();
        for (id, _) in net.iter_nodes() {
            let i = id.index();
            if id == net.source() {
                continue;
            }
            // RC impulse responses: m1 <= 0, m2 >= 0, variance >= 0.
            prop_assert!(m.m1[i] <= 1e-24, "m1 must be non-positive");
            prop_assert!(m.m2[i] >= -1e-40, "m2 must be non-negative");
            prop_assert!(2.0 * m.m2[i] - m.m1[i] * m.m1[i] >= -1e-30);
        }
        for path in net.paths() {
            // D2M never exceeds the Elmore bound; all metrics non-negative.
            let elmore = wa.path_elmore(path).value();
            let d2m = wa.path_d2m(path).value();
            prop_assert!(elmore >= 0.0 && d2m >= 0.0);
            prop_assert!(d2m <= elmore * (1.0 + 1e-9) + 1e-24);
            prop_assert!(wa.tree_path_elmore(path).value() >= 0.0);
            prop_assert!(wa.tree_path_d2m(path).value() >= 0.0);
        }
    }

    #[test]
    fn downstream_caps_are_monotone_along_paths(seed in 0u64..10_000) {
        // Walking from any node toward the source, downstream capacitance
        // can only grow (subtrees nest).
        let net = generated_net(seed, false);
        let wa = WireAnalysis::new(&net).expect("analysis");
        for path in net.paths() {
            for w in path.nodes.windows(2) {
                prop_assert!(
                    wa.downstream_cap(w[0]).value() >= wa.downstream_cap(w[1]).value() - 1e-25
                );
            }
        }
    }
}
