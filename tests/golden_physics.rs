//! Cross-crate physics checks: the golden simulator, the analytical
//! metrics and the generated nets must agree on circuit-theory facts.

use elmore::WireAnalysis;
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::{Farads, Ohms, RcNet, RcNetBuilder, Seconds};
use rcsim::{GoldenTimer, SiMode};

fn random_nets(count: usize, seed: u64) -> Vec<RcNet> {
    let cfg = NetConfig {
        nodes_min: 5,
        nodes_max: 24,
        ..Default::default()
    };
    let mut g = NetGenerator::new(seed, cfg);
    (0..count)
        .map(|i| g.net(format!("p{i}"), i % 2 == 0))
        .collect()
}

#[test]
fn golden_delay_bracketed_by_moment_metrics() {
    // For every random net and sink: D2M is a reasonable lower-side
    // estimate and raw Elmore an upper bound of the 50% delay; the golden
    // number must land within a generous bracket of the Elmore bound.
    let timer = GoldenTimer::new(0.8, Ohms(140.0));
    for net in random_nets(12, 3) {
        let wa = WireAnalysis::new(&net).expect("analysis");
        let timing = timer
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .expect("simulation");
        for (t, path) in timing.iter().zip(net.paths()) {
            let elmore = wa.path_elmore(path).value();
            assert!(
                t.delay.value() <= elmore * 1.3 + 2e-13,
                "net {} sink {}: golden {} vs elmore {}",
                net.name(),
                t.sink,
                t.delay.value(),
                elmore
            );
        }
    }
}

#[test]
fn scaling_all_capacitance_scales_delay() {
    // Doubling every capacitance of a linear RC network doubles every
    // time constant: golden delays must grow accordingly (with the driver
    // ramp adding a sub-linear floor).
    let build = |scale: f64| {
        let mut b = RcNetBuilder::new("s");
        let s = b.source("s", Farads(1e-15 * scale));
        let m = b.internal("m", Farads(6e-15 * scale));
        let k = b.sink("k", Farads(6e-15 * scale));
        b.resistor(s, m, Ohms(400.0));
        b.resistor(m, k, Ohms(400.0));
        b.build().expect("valid")
    };
    let timer = GoldenTimer::new(0.8, Ohms(140.0));
    let base = timer
        .time_net(&build(1.0), Seconds::from_ps(10.0), SiMode::Off)
        .expect("base")[0]
        .delay
        .value();
    let doubled = timer
        .time_net(&build(2.0), Seconds::from_ps(10.0), SiMode::Off)
        .expect("doubled")[0]
        .delay
        .value();
    assert!(
        doubled > base * 1.6 && doubled < base * 2.4,
        "base {base}, doubled {doubled}"
    );
}

#[test]
fn si_noise_never_speeds_up_the_victim() {
    let timer = GoldenTimer::new(0.8, Ohms(140.0));
    for net in random_nets(10, 7) {
        if net.couplings().is_empty() {
            continue;
        }
        let quiet = timer
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .expect("quiet");
        let noisy = timer
            .time_net(
                &net,
                Seconds::from_ps(20.0),
                SiMode::WorstCase {
                    aggressor_ramp: Seconds::from_ps(20.0),
                },
            )
            .expect("noisy");
        for (q, n) in quiet.iter().zip(&noisy) {
            assert!(
                n.delay.value() >= q.delay.value() - 1e-13,
                "net {}: opposite aggressor must not speed up the victim",
                net.name()
            );
        }
    }
}

#[test]
fn sink_order_matches_path_order_everywhere() {
    let timer = GoldenTimer::new(0.8, Ohms(140.0));
    for net in random_nets(8, 11) {
        let timing = timer
            .time_net(&net, Seconds::from_ps(15.0), SiMode::Off)
            .expect("simulation");
        assert_eq!(timing.len(), net.paths().len());
        for (t, p) in timing.iter().zip(net.paths()) {
            assert_eq!(t.sink, p.sink);
        }
    }
}

#[test]
fn reduction_preserves_golden_timing_within_tolerance() {
    // Series-merged networks must time the same paths to nearly the same
    // delays: reduction is an accuracy-preserving transformation.
    use rcnet::reduce::{merge_series, ReduceOptions};
    let timer = GoldenTimer::new(0.8, Ohms(140.0)).with_steps(3000);
    let mut checked = 0;
    for net in random_nets(8, 23) {
        let reduced = merge_series(&net, ReduceOptions::default()).expect("reduction");
        if reduced.merged == 0 {
            continue;
        }
        let full = timer
            .time_net(&net, Seconds::from_ps(20.0), SiMode::Off)
            .expect("full sim");
        let red = timer
            .time_net(&reduced.net, Seconds::from_ps(20.0), SiMode::Off)
            .expect("reduced sim");
        assert_eq!(full.len(), red.len());
        for (f, r) in full.iter().zip(&red) {
            let tol = 0.25 * f.delay.value().max(2e-13);
            assert!(
                (f.delay.value() - r.delay.value()).abs() < tol,
                "net {}: full {} vs reduced {}",
                net.name(),
                f.delay.value(),
                r.delay.value()
            );
        }
        checked += 1;
    }
    assert!(checked >= 3, "reduction must trigger on generated nets");
}

#[test]
fn exact_elmore_equals_tree_elmore_on_generated_trees() {
    let cfg = NetConfig {
        nodes_min: 5,
        nodes_max: 30,
        ..Default::default()
    };
    let mut g = NetGenerator::new(19, cfg);
    for i in 0..10 {
        let net = g.tree_net(format!("t{i}"));
        let wa = WireAnalysis::new(&net).expect("analysis");
        for path in net.paths() {
            let exact = wa.path_elmore(path).value();
            let tree = wa.tree_path_elmore(path).value();
            assert!(
                (exact - tree).abs() <= 1e-9 * exact.abs() + 1e-25,
                "net {i}: exact {exact} vs tree {tree}"
            );
        }
    }
}
