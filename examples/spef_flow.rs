//! SPEF ingestion flow: write extracted parasitics to a SPEF file, parse
//! it back (as if it came from StarRC), and time every wire path of
//! every net — the estimator consuming real-world-format input.
//!
//! ```text
//! cargo run --release --example spef_flow
//! ```

use gnntrans::dataset::DatasetBuilder;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::spef::{parse, write, SpefHeader};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend these came from a router + extractor.
    let mut generator = NetGenerator::new(11, NetConfig::default());
    let extracted: Vec<_> = (0..60)
        .map(|i| generator.net(format!("blk/n{i}"), i % 4 == 0))
        .collect();

    // Serialize to SPEF and round-trip through the parser.
    let header = SpefHeader {
        design: "spef_flow_demo".into(),
        ..Default::default()
    };
    let spef_text = write(&header, &extracted);
    let path = std::env::temp_dir().join("spef_flow_demo.spef");
    std::fs::write(&path, &spef_text)?;
    println!(
        "wrote {} ({} bytes, {} nets)",
        path.display(),
        spef_text.len(),
        extracted.len()
    );

    let doc = parse(&std::fs::read_to_string(&path)?)?;
    println!(
        "parsed back: design `{}`, {} nets",
        doc.header.design,
        doc.nets.len()
    );

    // Train on the first 50 parsed nets, report timing on the rest.
    let mut builder = DatasetBuilder::new(3);
    let data = builder.build(&doc.nets[..50])?;
    let mut cfg = EstimatorConfig::plan_b_small();
    cfg.epochs = 20;
    let mut estimator = WireTimingEstimator::new(&cfg, 5);
    estimator.train(&data)?;

    println!("\nwire timing of held-out nets:");
    for net in &doc.nets[50..] {
        let ctx = builder.context_for(net);
        let estimates = estimator.predict_net(net, &ctx)?;
        let worst = estimates
            .iter()
            .max_by(|a, b| a.delay.value().total_cmp(&b.delay.value()))
            .expect("every net has at least one path");
        println!(
            "  {:<10} {:>2} paths: worst delay {:6.2} ps (sink {}), slew {:6.2} ps",
            net.name(),
            estimates.len(),
            worst.delay.pico_seconds(),
            net.node(worst.sink).name,
            worst.slew.pico_seconds()
        );
    }
    // The one-call convenience the serving layer uses: SPEF text in,
    // per-net predictions out, generic driving context per net.
    let held_out = write(&header, &doc.nets[50..]);
    let preds = estimator.predict_spef(&held_out)?;
    println!("\npredict_spef over the same held-out nets:");
    for p in &preds {
        println!(
            "  {:<10} {:>2} paths, first sink {} delay {:6.2} ps",
            p.net,
            p.estimates.len(),
            p.sinks[0],
            p.estimates[0].delay.pico_seconds()
        );
    }

    let _ = std::fs::remove_file(path);
    Ok(())
}
