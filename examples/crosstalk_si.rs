//! Crosstalk study: how coupling capacitance shifts wire delay (the "SI
//! mode" the golden labels include), swept over coupling strength.
//!
//! ```text
//! cargo run --release --example crosstalk_si
//! ```

use rcnet::{Farads, Ohms, RcNetBuilder, Seconds};
use rcsim::{GoldenTimer, SiMode};

fn victim(coupling_ff: f64) -> rcnet::RcNet {
    let mut b = RcNetBuilder::new("victim");
    let s = b.source("drv:Z", Farads::from_ff(0.8));
    let m = b.internal("victim:1", Farads::from_ff(2.0));
    let k = b.sink("load:A", Farads::from_ff(2.5));
    b.resistor(s, m, Ohms(300.0));
    b.resistor(m, k, Ohms(300.0));
    if coupling_ff > 0.0 {
        b.coupling(m, "aggressor:5", Farads::from_ff(coupling_ff / 2.0));
        b.coupling(k, "aggressor:6", Farads::from_ff(coupling_ff / 2.0));
    }
    b.build().expect("victim net is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let timer = GoldenTimer::new(0.8, Ohms(140.0));
    let input_slew = Seconds::from_ps(25.0);
    let si = SiMode::WorstCase {
        aggressor_ramp: Seconds::from_ps(25.0),
    };

    println!("coupling  quiet-delay  noisy-delay  delta   quiet-slew  noisy-slew");
    println!("  (fF)       (ps)         (ps)      (ps)       (ps)        (ps)");
    for coupling_ff in [0.0, 1.0, 2.0, 4.0, 8.0, 12.0] {
        let net = victim(coupling_ff);
        let quiet = timer.time_net(&net, input_slew, SiMode::Off)?;
        let noisy = timer.time_net(&net, input_slew, si)?;
        let (q, n) = (&quiet[0], &noisy[0]);
        println!(
            "  {coupling_ff:4.1}     {:8.2}     {:8.2}   {:+6.2}     {:8.2}    {:8.2}",
            q.delay.pico_seconds(),
            n.delay.pico_seconds(),
            n.delay.pico_seconds() - q.delay.pico_seconds(),
            q.slew.pico_seconds(),
            n.slew.pico_seconds()
        );
    }
    println!(
        "\nOpposite-switching aggressors inject charge against the victim \
         edge through the\ncoupling capacitance: delay grows monotonically \
         with the coupling — the delta\nthe paper's PrimeTime-SI labels carry."
    );
    Ok(())
}
