//! Full-design STA: build a combinational netlist with parasitic nets,
//! propagate arrival times topologically with the trained estimator as
//! the wire timer, and cross-check the endpoints against the golden
//! wire timer.
//!
//! ```text
//! cargo run --release --example design_sta
//! ```

use gnntrans::dataset::DatasetBuilder;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use gnntrans::timers::GoldenWireTimer;
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::Seconds;
use rcsim::GoldenTimer;
use sta::cells::CellLibrary;
use sta::netlist::Netlist;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::builtin();
    let cfg = NetConfig {
        nodes_min: 5,
        nodes_max: 16,
        sinks_max: 2,
        ..Default::default()
    };
    let mut generator = NetGenerator::new(33, cfg);

    // Train the estimator.
    println!("training estimator...");
    let train_nets: Vec<_> = (0..90)
        .map(|i| generator.net(format!("t{i}"), i % 4 == 0))
        .collect();
    let mut builder = DatasetBuilder::new(4);
    let data = builder.build(&train_nets)?;
    let mut ecfg = EstimatorConfig::plan_b_small();
    ecfg.epochs = 25;
    let mut estimator = WireTimingEstimator::new(&ecfg, 13);
    estimator.train(&data)?;

    // Build a three-level netlist: PI -> 2 inverters -> NAND -> buffer -> out.
    // The PI net must fan out to both inverters, so regenerate until the
    // random topology has at least two sinks.
    let mut with_sinks = |name: &str, nontree: bool, min_sinks: usize| {
        let mut attempt = 0;
        loop {
            let net = generator.net(format!("{name}_{attempt}"), nontree);
            if net.sinks().len() >= min_sinks {
                return net;
            }
            attempt += 1;
        }
    };
    let mut nl = Netlist::new();
    let pi = nl.add_primary_input(with_sinks("pi_net", false, 2));
    let (_, a) = nl.add_gate(
        lib.cell("INV_X2").expect("builtin").clone(),
        &[(pi, 0)],
        generator.net("net_a", true),
    )?;
    let (_, b) = nl.add_gate(
        lib.cell("INV_X1").expect("builtin").clone(),
        &[(pi, 1)],
        generator.net("net_b", false),
    )?;
    let (_, c) = nl.add_gate(
        lib.cell("NAND2_X1").expect("builtin").clone(),
        &[(a, 0), (b, 0)],
        generator.net("net_c", true),
    )?;
    let (_, out) = nl.add_gate(
        lib.cell("BUF_X2").expect("builtin").clone(),
        &[(c, 0)],
        generator.net("net_out", false),
    )?;
    println!(
        "netlist: {} gates, {} nets, {} pin-to-pin paths",
        nl.gates().len(),
        nl.nets().len(),
        nl.count_paths()?
    );

    // Propagate with the estimator, then with the golden wire timer.
    let input_slew = Seconds::from_ps(20.0);
    let fast = nl.propagate(&estimator, input_slew)?;
    let golden_timer = GoldenWireTimer::new(GoldenTimer::default(), true);
    let golden = nl.propagate(&golden_timer, input_slew)?;

    println!("\nper-net worst sink arrival (estimator vs golden):");
    fn worst(t: &sta::netlist::NetTiming) -> f64 {
        t.at_sinks
            .iter()
            .map(|(a, _)| a.pico_seconds())
            .fold(0.0f64, f64::max)
    }
    for (i, (f, g)) in fast.iter().zip(&golden).enumerate() {
        let f_at = worst(f);
        let g_at = worst(g);
        println!(
            "  net {i} ({:<8}): {f_at:7.2} ps vs {g_at:7.2} ps  ({:+.2} ps)",
            nl.nets()[i].rc.name(),
            f_at - g_at
        );
    }
    let f_end = fast[out.0].at_sinks[0].0.pico_seconds();
    let g_end = golden[out.0].at_sinks[0].0.pico_seconds();
    println!("\nendpoint arrival: estimator {f_end:.2} ps, golden {g_end:.2} ps");
    Ok(())
}
