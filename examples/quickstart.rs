//! Quickstart: build a parasitic net, analyze it, label it with the
//! golden simulator, train a small GNNTrans estimator, and predict an
//! unseen net.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gnntrans::dataset::DatasetBuilder;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::{Farads, Ohms, RcNetBuilder, Seconds};
use rcsim::{GoldenTimer, SiMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an RC net by hand: driver -> T-junction -> two sinks.
    let mut b = RcNetBuilder::new("demo");
    let drv = b.source("U1:Z", Farads::from_ff(0.8));
    let mid = b.internal("demo:1", Farads::from_ff(1.5));
    let near = b.sink("U2:A", Farads::from_ff(2.0));
    let far = b.sink("U3:A", Farads::from_ff(2.5));
    b.resistor(drv, mid, Ohms(40.0));
    b.resistor(mid, near, Ohms(25.0));
    b.resistor(mid, far, Ohms(90.0));
    let net = b.build()?;
    println!(
        "net `{}`: {} nodes, {} resistors, {} wire paths, tree = {}",
        net.name(),
        net.node_count(),
        net.edge_count(),
        net.paths().len(),
        net.is_tree()
    );

    // 2. Closed-form analysis: Elmore / D2M per path.
    let wa = elmore::WireAnalysis::new(&net)?;
    for path in net.paths() {
        println!(
            "  path to {:>6}: Elmore {:6.2} ps, D2M {:6.2} ps",
            net.node(path.sink).name,
            wa.path_elmore(path).pico_seconds(),
            wa.path_d2m(path).pico_seconds()
        );
    }

    // 3. Golden transient simulation (the sign-off reference).
    let timer = GoldenTimer::new(0.8, Ohms(140.0));
    for t in timer.time_net(&net, Seconds::from_ps(20.0), SiMode::Off)? {
        println!(
            "  golden  {:>6}: delay {:6.2} ps, slew {:6.2} ps",
            net.node(t.sink).name,
            t.delay.pico_seconds(),
            t.slew.pico_seconds()
        );
    }

    // 4. Train a small estimator on synthetic nets and predict an unseen
    //    one (the paper's workflow in miniature).
    println!("\ntraining estimator on 80 synthetic nets...");
    let mut generator = NetGenerator::new(7, NetConfig::default());
    let train_nets: Vec<_> = (0..80)
        .map(|i| generator.net(format!("train{i}"), i % 3 != 0))
        .collect();
    let mut builder = DatasetBuilder::new(1);
    let data = builder.build(&train_nets)?;

    let mut cfg = EstimatorConfig::plan_b_small();
    cfg.epochs = 25;
    let mut estimator = WireTimingEstimator::new(&cfg, 42);
    let report = estimator.train(&data)?;
    println!(
        "trained {} weights, final loss {:.4}",
        estimator.weight_count(),
        report.final_loss()
    );

    let probe = generator.net("probe", true);
    let ctx = builder.context_for(&probe);
    let golden = GoldenTimer::new(0.8, ctx.drive_res).time_net(
        &probe,
        ctx.input_slew,
        SiMode::Off,
    )?;
    println!(
        "\nunseen net `{}` ({} nodes, {} loops):",
        probe.name(),
        probe.node_count(),
        probe.loop_count()
    );
    for (est, gold) in estimator.predict_net(&probe, &ctx)?.iter().zip(&golden) {
        println!(
            "  sink {:>12}: predicted delay {:6.2} ps vs golden {:6.2} ps",
            probe.node(est.sink).name,
            est.delay.pico_seconds(),
            gold.delay.pico_seconds()
        );
    }
    Ok(())
}
