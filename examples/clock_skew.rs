//! Clock-tree skew analysis: time every leaf of a balanced H-tree with
//! the golden simulator and report the insertion delay and skew — the
//! many-sink stress case for per-path wire timing.
//!
//! ```text
//! cargo run --release --example clock_skew
//! ```

use netgen::special::clock_htree;
use netgen::TechProfile;
use rcnet::{Ohms, Seconds};
use rcsim::{GoldenTimer, SiMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechProfile::n16();
    let timer = GoldenTimer::new(tech.vdd, Ohms(90.0));

    println!("levels  sinks  insertion(ps)  skew(ps)  slew-spread(ps)");
    for levels in 2..=6u32 {
        let net = clock_htree(&format!("clk{levels}"), levels, &tech, 42);
        let timing = timer.time_net(&net, Seconds::from_ps(18.0), SiMode::Off)?;
        let delays: Vec<f64> = timing.iter().map(|t| t.delay.pico_seconds()).collect();
        let slews: Vec<f64> = timing.iter().map(|t| t.slew.pico_seconds()).collect();
        let fold = |xs: &[f64]| {
            (
                xs.iter().copied().fold(f64::INFINITY, f64::min),
                xs.iter().copied().fold(0.0f64, f64::max),
            )
        };
        let (d_min, d_max) = fold(&delays);
        let (s_min, s_max) = fold(&slews);
        println!(
            "  {levels}     {:>4}     {:8.2}    {:7.3}       {:6.3}",
            timing.len(),
            d_max,
            d_max - d_min,
            s_max - s_min
        );
    }
    println!(
        "\nInsertion delay grows with depth while skew stays small — the \
         balanced H-tree\nproperty (the residual skew comes from the \
         generator's 2% OCV jitter)."
    );
    Ok(())
}
