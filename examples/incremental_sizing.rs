//! Incremental timing optimization — the paper's motivating use case
//! (§I, §V): a fast estimator in the sizing loop, the slow golden timer
//! only for final sign-off.
//!
//! A multi-stage path is driven through every combination of buffer
//! drive strengths; the estimator evaluates each candidate, the winner is
//! verified with the golden simulator.
//!
//! ```text
//! cargo run --release --example incremental_sizing
//! ```

use gnntrans::dataset::DatasetBuilder;
use gnntrans::estimator::{EstimatorConfig, WireTimingEstimator};
use gnntrans::timers::GoldenWireTimer;
use netgen::nets::{NetConfig, NetGenerator};
use rcnet::Seconds;
use rcsim::GoldenTimer;
use sta::cells::CellLibrary;
use sta::path::{Stage, TimingPath};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::builtin();
    let mut generator = NetGenerator::new(21, NetConfig::default());

    // Train the estimator once, up front.
    println!("training estimator...");
    let train_nets: Vec<_> = (0..100)
        .map(|i| generator.net(format!("t{i}"), i % 3 == 0))
        .collect();
    let mut builder = DatasetBuilder::new(2);
    let data = builder.build(&train_nets)?;
    let mut cfg = EstimatorConfig::plan_b_small();
    cfg.epochs = 30;
    let mut estimator = WireTimingEstimator::new(&cfg, 9);
    estimator.train(&data)?;

    // The path to optimize: three stages over fixed nets; the free
    // variables are the three buffer drive strengths.
    let stage_nets: Vec<_> = (0..3)
        .map(|i| generator.net(format!("stage{i}"), i == 1))
        .collect();
    let sizes = ["BUF_X1", "BUF_X2", "BUF_X4"];
    let input_slew = Seconds::from_ps(25.0);

    let build_path = |choice: &[usize]| {
        TimingPath::new(
            choice
                .iter()
                .zip(&stage_nets)
                .map(|(&s, net)| Stage {
                    cell: lib.cell(sizes[s]).expect("builtin").clone(),
                    net: net.clone(),
                    sink_path: 0,
                })
                .collect(),
        )
    };

    // Sweep all 27 sizing combinations with the fast estimator.
    let started = Instant::now();
    let mut best: Option<(Vec<usize>, f64)> = None;
    for a in 0..3 {
        for b in 0..3 {
            for c in 0..3 {
                let choice = vec![a, b, c];
                let arrival = build_path(&choice)
                    .arrival(&estimator, input_slew)?
                    .arrival
                    .pico_seconds();
                if best.as_ref().is_none_or(|(_, b)| arrival < *b) {
                    best = Some((choice, arrival));
                }
            }
        }
    }
    let est_elapsed = started.elapsed();
    let (choice, est_arrival) = best.expect("27 candidates evaluated");
    println!(
        "estimator swept 27 sizings in {est_elapsed:.2?}: best = [{}] at {est_arrival:.1} ps",
        choice
            .iter()
            .map(|&s| sizes[s])
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Sign-off the winner with the golden simulator.
    let started = Instant::now();
    let golden = GoldenWireTimer::new(GoldenTimer::default(), true);
    let signoff = build_path(&choice)
        .arrival(&golden, input_slew)?
        .arrival
        .pico_seconds();
    println!(
        "golden sign-off of the winner: {signoff:.1} ps ({:.2?}; {:+.1} ps vs estimate)",
        started.elapsed(),
        est_arrival - signoff
    );

    // How wrong would the naive (weakest-driver) choice have been?
    let naive = build_path(&[0, 0, 0])
        .arrival(&golden, input_slew)?
        .arrival
        .pico_seconds();
    println!("all-X1 sizing would arrive at {naive:.1} ps ({:+.1} ps slower)", naive - signoff);
    Ok(())
}
