//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize` and the `criterion_group!`/`criterion_main!` macros with a
//! plain timing loop (median over the configured sample count). It keeps
//! `cargo bench -p bench` runnable without crates.io access; numbers are
//! indicative, not statistically rigorous.

use std::time::{Duration, Instant};

/// How per-iteration setup cost relates to the routine (subset of
/// `criterion::BatchSize`; only used to pick an iteration count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Cheap setup relative to the routine.
    SmallInput,
    /// Comparable setup and routine cost.
    LargeInput,
    /// Setup dominates; run one routine call per batch.
    PerIteration,
}

/// Measurement driver passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter*` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records the median sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(routine());
            times.push(t.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            times.push(t.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// Benchmark registry and configuration (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(4),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget (advisory in this shim).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark and prints its median iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // One untimed warm-up pass.
        let mut warm = Bencher {
            samples: 1,
            last_median: Duration::ZERO,
        };
        let warm_until = Instant::now() + self.warm_up_time;
        loop {
            f(&mut warm);
            if Instant::now() >= warm_until {
                break;
            }
        }
        let mut b = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!("{name:<40} median {:>12.3?}", b.last_median);
        self
    }
}

/// Declares a benchmark group (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher {
            samples: 4,
            last_median: Duration::ZERO,
        };
        let mut setups = 0usize;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2)
                .warm_up_time(Duration::from_millis(1));
            targets = target
        }
        benches();
    }
}
