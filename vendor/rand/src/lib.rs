//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. This shim provides `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges and `Rng::gen_bool`, backed
//! by the xoshiro256++ generator seeded through SplitMix64.
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on *deterministic*
//! seed-addressed pseudo-randomness, not on upstream's exact values.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from `self`.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`; panics on an empty range, as the
    /// real `rand` does.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        next_f64(self) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + Sized> Rng for T {}

fn next_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_f32(rng: &mut dyn RngCore) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Lemire-style unbiased bounded sampling.
fn next_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + next_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + next_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_f32(rng) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 8, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn covers_full_integer_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }
}
