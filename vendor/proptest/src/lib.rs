//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! is unavailable. This shim keeps the same *surface* — the `proptest!`
//! macro, `prop_assert*`/`prop_assume!`, range and collection strategies,
//! `any::<T>()`, `prop_map` and `ProptestConfig::with_cases` — backed by a
//! simple deterministic case runner. There is no shrinking: a failing
//! case panics with its case index and seed so it can be replayed.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure reported by a test case body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed.
        Fail(String),
        /// A `prop_assume!` filtered the case out.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An assumption rejection carrying `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// A generator whose stream is a function of the test identity
        /// and the case index, so every run is reproducible.
        pub fn for_case(test_id: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_id.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                x: h ^ (0x9e3779b97f4a7c15u64.wrapping_mul(case as u64 + 1)),
            }
        }

        /// The next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Value source for one property argument (subset of
    /// `proptest::strategy::Strategy`; sampling only, no shrinking).
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.next_below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    /// Strategy for a fixed single value (like `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical arbitrary-value strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (subset of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fixed-length vector strategy (subset of
    /// `proptest::collection::vec`: only exact lengths are supported).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `len` samples of `element` per case.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything the tests import (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module path used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each `fn` becomes a `#[test]` that samples
/// its arguments from the given strategies for `cases` deterministic
/// cases. No shrinking: failures report the case index for replay.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    let mut __ptrng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat), &mut __ptrng,
                        );
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= 4 * config.cases,
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                            panic!(
                                "property {} failed at case {case}: {reason}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", *l, *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", *l, *r
        );
    }};
}

/// Filters out cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..12, x in -2.5f64..2.5) {
            prop_assert!((1..12).contains(&n));
            prop_assert!((-2.5..2.5).contains(&x));
        }

        #[test]
        fn vec_strategy_has_exact_len(v in prop::collection::vec(0.0f64..1.0, 17)) {
            prop_assert_eq!(v.len(), 17);
            for e in &v {
                prop_assert!((0.0..1.0).contains(e));
            }
        }

        #[test]
        fn prop_map_applies(v in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 200);
        }

        #[test]
        fn assume_rejects_without_failing(b in any::<bool>()) {
            prop_assume!(b);
            prop_assert!(b);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..10) {
            prop_assert!(seed < 10);
        }
    }

    #[test]
    fn helper_fns_can_return_test_case_error() {
        fn check(v: i32) -> Result<(), TestCaseError> {
            prop_assert!(v > 0, "v must be positive, got {v}");
            Ok(())
        }
        assert!(check(1).is_ok());
        assert!(matches!(check(-1), Err(TestCaseError::Fail(_))));
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1_000_000;
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(s.sample(&mut TestRng::for_case("t", 3)), s.sample(&mut c));
    }
}
